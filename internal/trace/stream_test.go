package trace

import (
	"bytes"
	"testing"

	"repro/internal/netem"
	"repro/internal/sim"
)

// sampleEvents fabricates a small deterministic event stream.
func sampleEvents(n int) []netem.LinkEvent {
	evs := make([]netem.LinkEvent, 0, n)
	for i := 0; i < n; i++ {
		kind := netem.Deliver
		if i%7 == 3 {
			kind = netem.Drop
		} else if i%2 == 0 {
			kind = netem.Enqueue
		}
		evs = append(evs, netem.LinkEvent{
			Time:    sim.Time(i) * sim.Millisecond,
			Kind:    kind,
			QueueB:  i * 100,
			Sojourn: sim.Time(i) * sim.Microsecond,
			Packet:  &netem.Packet{Flow: 1 + i%2, Seq: int64(i), Size: 1200, IsAck: i%5 == 0},
		})
	}
	return evs
}

// TestStreamRecorderMatchesWriteCSV: the streaming recorder must produce
// byte-identical CSV to the accumulate-then-WriteCSV path it replaces.
func TestStreamRecorderMatchesWriteCSV(t *testing.T) {
	evs := sampleEvents(100)

	var mem Trace
	tap := mem.Recorder()
	for _, ev := range evs {
		tap(ev)
	}
	var want bytes.Buffer
	if err := mem.WriteCSV(&want); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}

	var got bytes.Buffer
	sr := NewStreamRecorder(&got)
	stap := sr.Recorder()
	for _, ev := range evs {
		stap(ev)
	}
	if err := sr.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Errorf("streamed CSV differs from WriteCSV:\nwant %d bytes\ngot  %d bytes", want.Len(), got.Len())
	}

	// And it must round-trip through the existing reader.
	rt, err := ReadCSV(bytes.NewReader(got.Bytes()))
	if err != nil {
		t.Fatalf("ReadCSV of streamed output: %v", err)
	}
	if len(rt.Records) != len(evs) {
		t.Errorf("round-trip has %d records, want %d", len(rt.Records), len(evs))
	}
}

func TestStreamRecorderDeliverOnly(t *testing.T) {
	evs := sampleEvents(50)
	var buf bytes.Buffer
	sr := NewStreamRecorder(&buf)
	tap := sr.DeliverOnly()
	want := 0
	for _, ev := range evs {
		if ev.Kind == netem.Deliver {
			want++
		}
		tap(ev)
	}
	if err := sr.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	rt, err := ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if len(rt.Records) != want {
		t.Errorf("deliver-only streamed %d records, want %d", len(rt.Records), want)
	}
}

func TestStreamRecorderStickyError(t *testing.T) {
	sr := NewStreamRecorder(failWriter{})
	tap := sr.Recorder()
	for _, ev := range sampleEvents(2000) { // exceed the csv.Writer buffer
		tap(ev)
	}
	if sr.Flush() == nil {
		t.Fatal("Flush on a failing writer returned nil")
	}
	if sr.Err() == nil {
		t.Fatal("sticky error not retained")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errBoom }

var errBoom = bytes.ErrTooLarge

// TestRingBounded: the ring keeps exactly the newest n records in order
// and counts everything it saw.
func TestRingBounded(t *testing.T) {
	evs := sampleEvents(100)
	rg := NewRing(16)
	tap := rg.Recorder()
	for _, ev := range evs {
		tap(ev)
	}
	if rg.Total() != 100 {
		t.Errorf("Total = %d, want 100", rg.Total())
	}
	recs := rg.Records()
	if len(recs) != 16 {
		t.Fatalf("retained %d records, want 16", len(recs))
	}
	for i, r := range recs {
		if want := int64(100 - 16 + i); r.Seq != want {
			t.Errorf("ring[%d].Seq = %d, want %d (oldest-first tail)", i, r.Seq, want)
		}
	}

	// A ring larger than the stream retains everything.
	rg2 := NewRing(256)
	tap2 := rg2.Recorder()
	for _, ev := range evs {
		tap2(ev)
	}
	if got := len(rg2.Records()); got != 100 {
		t.Errorf("under-full ring retained %d, want 100", got)
	}
}
