// Package trace records per-packet link events during an experiment and
// exports them in CSV form, standing in for the paper's tcpdump packet
// captures. Analyses that the paper performs "offline via packet trace"
// (throughput/delay time series) are derived from these records.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/netem"
	"repro/internal/sim"
)

// Record is one packet event.
type Record struct {
	Time    sim.Time
	Flow    int
	Seq     int64
	Bytes   int
	IsAck   bool
	Kind    netem.EventKind
	QueueB  int
	Sojourn sim.Time
}

// Trace is an append-only packet event log.
type Trace struct {
	Records []Record
}

// Recorder returns a tap function that appends every link event to the
// trace. Attach it with (*netem.Link).Tap.
func (tr *Trace) Recorder() func(netem.LinkEvent) {
	return func(ev netem.LinkEvent) {
		tr.Records = append(tr.Records, Record{
			Time:    ev.Time,
			Flow:    ev.Packet.Flow,
			Seq:     ev.Packet.Seq,
			Bytes:   ev.Packet.Size,
			IsAck:   ev.Packet.IsAck,
			Kind:    ev.Kind,
			QueueB:  ev.QueueB,
			Sojourn: ev.Sojourn,
		})
	}
}

// DeliverOnly returns a tap that records only delivery events (the common
// case for throughput analysis; drops enqueue noise).
func (tr *Trace) DeliverOnly() func(netem.LinkEvent) {
	return func(ev netem.LinkEvent) {
		if ev.Kind != netem.Deliver {
			return
		}
		tr.Records = append(tr.Records, Record{
			Time:    ev.Time,
			Flow:    ev.Packet.Flow,
			Seq:     ev.Packet.Seq,
			Bytes:   ev.Packet.Size,
			IsAck:   ev.Packet.IsAck,
			Kind:    ev.Kind,
			QueueB:  ev.QueueB,
			Sojourn: ev.Sojourn,
		})
	}
}

// Filter returns the records matching pred.
func (tr *Trace) Filter(pred func(Record) bool) []Record {
	var out []Record
	for _, r := range tr.Records {
		if pred(r) {
			out = append(out, r)
		}
	}
	return out
}

// FlowBytes sums delivered data bytes for a flow over [start, end).
func (tr *Trace) FlowBytes(flow int, start, end sim.Time) int64 {
	var total int64
	for _, r := range tr.Records {
		if r.Kind == netem.Deliver && !r.IsAck && r.Flow == flow &&
			r.Time >= start && r.Time < end {
			total += int64(r.Bytes)
		}
	}
	return total
}

// Drops counts drop events for a flow (all flows when flow < 0).
func (tr *Trace) Drops(flow int) int {
	n := 0
	for _, r := range tr.Records {
		if r.Kind == netem.Drop && (flow < 0 || r.Flow == flow) {
			n++
		}
	}
	return n
}

// csvHeader is the exported column set.
var csvHeader = []string{"time_s", "flow", "seq", "bytes", "is_ack", "kind", "queue_bytes", "sojourn_ms"}

// WriteCSV exports the trace.
func (tr *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, r := range tr.Records {
		rec := []string{
			strconv.FormatFloat(r.Time.Seconds(), 'f', 9, 64),
			strconv.Itoa(r.Flow),
			strconv.FormatInt(r.Seq, 10),
			strconv.Itoa(r.Bytes),
			strconv.FormatBool(r.IsAck),
			r.Kind.String(),
			strconv.Itoa(r.QueueB),
			strconv.FormatFloat(r.Sojourn.Millis(), 'f', 6, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return &Trace{}, nil
	}
	tr := &Trace{}
	for i, row := range rows[1:] {
		if len(row) != len(csvHeader) {
			return nil, fmt.Errorf("trace: row %d has %d fields, want %d", i+2, len(row), len(csvHeader))
		}
		ts, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d time: %w", i+2, err)
		}
		flow, err := strconv.Atoi(row[1])
		if err != nil {
			return nil, fmt.Errorf("trace: row %d flow: %w", i+2, err)
		}
		seq, err := strconv.ParseInt(row[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d seq: %w", i+2, err)
		}
		bytes, err := strconv.Atoi(row[3])
		if err != nil {
			return nil, fmt.Errorf("trace: row %d bytes: %w", i+2, err)
		}
		isAck, err := strconv.ParseBool(row[4])
		if err != nil {
			return nil, fmt.Errorf("trace: row %d is_ack: %w", i+2, err)
		}
		var kind netem.EventKind
		switch row[5] {
		case "enqueue":
			kind = netem.Enqueue
		case "drop":
			kind = netem.Drop
		case "deliver":
			kind = netem.Deliver
		default:
			return nil, fmt.Errorf("trace: row %d unknown kind %q", i+2, row[5])
		}
		queueB, err := strconv.Atoi(row[6])
		if err != nil {
			return nil, fmt.Errorf("trace: row %d queue: %w", i+2, err)
		}
		soj, err := strconv.ParseFloat(row[7], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d sojourn: %w", i+2, err)
		}
		tr.Records = append(tr.Records, Record{
			Time:    sim.Time(ts * float64(sim.Second)),
			Flow:    flow,
			Seq:     seq,
			Bytes:   bytes,
			IsAck:   isAck,
			Kind:    kind,
			QueueB:  queueB,
			Sojourn: sim.Time(soj * float64(sim.Millisecond)),
		})
	}
	return tr, nil
}
