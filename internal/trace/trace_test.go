package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/netem"
	"repro/internal/sim"
)

func sampleTrace() *Trace {
	return &Trace{Records: []Record{
		{Time: 1 * sim.Second, Flow: 1, Seq: 0, Bytes: 1200, Kind: netem.Enqueue, QueueB: 1200},
		{Time: 1*sim.Second + 500*sim.Microsecond, Flow: 1, Seq: 0, Bytes: 1200, Kind: netem.Deliver, QueueB: 0, Sojourn: 500 * sim.Microsecond},
		{Time: 2 * sim.Second, Flow: 2, Seq: 0, Bytes: 1200, Kind: netem.Drop, QueueB: 2400},
		{Time: 3 * sim.Second, Flow: 1, Seq: 1, Bytes: 40, IsAck: true, Kind: netem.Deliver},
	}}
}

func TestRecorderCapturesEvents(t *testing.T) {
	eng := sim.New()
	tr := &Trace{}
	link := netem.NewLink(eng, netem.LinkConfig{RateBps: 8e6, Propagation: sim.Millisecond, QueueBytes: 1000},
		netem.HandlerFunc(func(*netem.Packet) {}))
	link.Tap(tr.Recorder())
	link.HandlePacket(&netem.Packet{Flow: 7, Seq: 3, Size: 1000})
	link.HandlePacket(&netem.Packet{Flow: 7, Seq: 4, Size: 1000}) // dropped
	eng.Run()
	if len(tr.Records) != 3 { // enqueue, drop, deliver
		t.Fatalf("records = %d, want 3", len(tr.Records))
	}
	if tr.Records[1].Kind != netem.Drop {
		t.Fatalf("second record kind = %v", tr.Records[1].Kind)
	}
	if tr.Records[2].Flow != 7 || tr.Records[2].Seq != 3 {
		t.Fatalf("deliver record = %+v", tr.Records[2])
	}
}

func TestDeliverOnlyFiltersKinds(t *testing.T) {
	eng := sim.New()
	tr := &Trace{}
	link := netem.NewLink(eng, netem.LinkConfig{RateBps: 8e6, QueueBytes: 1000},
		netem.HandlerFunc(func(*netem.Packet) {}))
	link.Tap(tr.DeliverOnly())
	link.HandlePacket(&netem.Packet{Flow: 1, Size: 1000})
	link.HandlePacket(&netem.Packet{Flow: 1, Size: 1000}) // dropped
	eng.Run()
	if len(tr.Records) != 1 || tr.Records[0].Kind != netem.Deliver {
		t.Fatalf("records = %+v", tr.Records)
	}
}

func TestFlowBytes(t *testing.T) {
	tr := sampleTrace()
	if got := tr.FlowBytes(1, 0, 10*sim.Second); got != 1200 {
		t.Fatalf("FlowBytes = %d, want 1200 (acks excluded)", got)
	}
	if got := tr.FlowBytes(1, 2*sim.Second, 10*sim.Second); got != 0 {
		t.Fatalf("windowed FlowBytes = %d, want 0", got)
	}
}

func TestDrops(t *testing.T) {
	tr := sampleTrace()
	if tr.Drops(-1) != 1 || tr.Drops(2) != 1 || tr.Drops(1) != 0 {
		t.Fatal("drop counting wrong")
	}
}

func TestFilter(t *testing.T) {
	tr := sampleTrace()
	acks := tr.Filter(func(r Record) bool { return r.IsAck })
	if len(acks) != 1 || acks[0].Bytes != 40 {
		t.Fatalf("filter = %+v", acks)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(tr.Records) {
		t.Fatalf("round trip lost records: %d vs %d", len(got.Records), len(tr.Records))
	}
	for i := range tr.Records {
		a, b := tr.Records[i], got.Records[i]
		if a.Flow != b.Flow || a.Seq != b.Seq || a.Bytes != b.Bytes ||
			a.IsAck != b.IsAck || a.Kind != b.Kind || a.QueueB != b.QueueB {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, a, b)
		}
		if d := a.Time - b.Time; d < -sim.Microsecond || d > sim.Microsecond {
			t.Fatalf("record %d time drift: %v vs %v", i, a.Time, b.Time)
		}
	}
}

func TestReadCSVEmpty(t *testing.T) {
	tr, err := ReadCSV(strings.NewReader(""))
	if err != nil || len(tr.Records) != 0 {
		t.Fatalf("empty read: %v %v", tr, err)
	}
}

func TestReadCSVRejectsBadRows(t *testing.T) {
	hdr := "time_s,flow,seq,bytes,is_ack,kind,queue_bytes,sojourn_ms\n"
	cases := []string{
		hdr + "x,1,0,1200,false,deliver,0,0\n",
		hdr + "1.0,x,0,1200,false,deliver,0,0\n",
		hdr + "1.0,1,0,1200,false,exploded,0,0\n",
		hdr + "1.0,1,0,1200,maybe,deliver,0,0\n",
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d: bad row accepted", i)
		}
	}
}
