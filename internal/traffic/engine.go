package traffic

import (
	"errors"
	"fmt"
	"slices"

	"repro/internal/cc"
	"repro/internal/faults"
	"repro/internal/geom"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// ErrConservation marks a packet-conservation violation detected at drain:
// packets injected into a link did not all come back out as delivered or
// dropped, or a queue failed to empty. It indicates an engine bug, never a
// property of the simulated workload, so Run always checks it.
var ErrConservation = errors.New("traffic: packet conservation violated")

// Cohort is a resolved flow population: its serializable spec plus the
// transport profile and congestion-controller factory the caller resolved
// from the stack registry (this package never imports the registry).
type Cohort struct {
	Spec          CohortSpec
	Profile       transport.Config
	NewController func() cc.Controller
}

// NetConfig shapes the shared path: one forward bottleneck carrying every
// flow's data, one fast shared reverse link carrying every ACK.
type NetConfig struct {
	// BottleneckBps is the forward serialization rate (> 0).
	BottleneckBps float64
	// BaseRTT is the two-way propagation delay, split evenly across the
	// forward and reverse links.
	BaseRTT sim.Time
	// QueueBytes is the bottleneck's droptail capacity (0 = unlimited).
	QueueBytes int
	// ReverseBps defaults to 40x the bottleneck (effectively uncongested).
	ReverseBps float64
	// Jitter adds uniform [0, Jitter] per-packet delay on the forward
	// path, decorrelating trials like the two-flow testbed does.
	Jitter sim.Time
}

// Config assembles one many-flow trial.
type Config struct {
	// Spec is the validated traffic model; Cohorts resolves its cohort
	// list 1:1 (same order).
	Spec    Spec
	Cohorts []Cohort
	Net     NetConfig
	// Duration is the measurement horizon on the virtual clock.
	Duration sim.Time
	// SampleRTTs sizes the per-cohort sampling window in base RTTs
	// (default 10, matching §3.1); TruncFrac is trimmed from each end of
	// the run before windows count (default 0.10).
	SampleRTTs int
	TruncFrac  float64
	// Seed drives every random draw: arrivals, cohort picks, flow sizes,
	// start staggering, link jitter.
	Seed uint64
	// Deadline and Interrupted ride on the engine watchdog, mirroring
	// core.Bounds for supervised sweeps.
	Deadline    sim.Time
	Interrupted func() bool
	// Tracer, when non-nil, receives qlog events from every sender plus
	// per-flow completion summaries; tracing never perturbs results.
	Tracer telemetry.Tracer
}

// binding routes one direction of one flow id to its current endpoint,
// with a generation check: a packet arriving for a released (or rebound)
// flow is counted and discarded, never delivered into recycled state. It
// is embedded in flowState, so registration allocates nothing.
type binding struct {
	e   *Engine
	fs  *flowState
	gen uint64
	ack bool // reverse path: route to the sender
}

// HandlePacket implements netem.Handler.
func (b *binding) HandlePacket(p *netem.Packet) {
	fs := b.fs
	if !fs.active || fs.gen != b.gen || fs.id != p.Flow {
		b.e.stats.StaleDeliveries++
		netem.ReleasePacket(p)
		return
	}
	if b.ack {
		fs.snd.HandlePacket(p)
	} else {
		fs.rcv.HandlePacket(p)
	}
}

// flowState is one live (or pooled) flow. gen increments on every release,
// so any event still holding the previous incarnation is detectable.
type flowState struct {
	id     int
	gen    uint64
	cohort int
	size   int64
	start  sim.Time
	snd    *transport.Sender
	rcv    *transport.Receiver
	active bool
	fwdH   binding // data path -> rcv
	revH   binding // ACK path -> snd
}

// cohortAccum aggregates one cohort's running totals plus the current
// sampling window (flushed by the single periodic window event).
type cohortAccum struct {
	started        int64
	completed      int64
	bytesAcked     int64
	bytesDelivered int64
	fctSum         sim.Time
	lost           int64
	spurious       int64

	wBytes  int64
	wRTTSum sim.Time
	wRTTN   int64
	points  []geom.Point
}

// EngineStats are the engine's own counters (flow lifecycle and pool
// discipline), exposed for invariant tests and reports.
type EngineStats struct {
	FlowsStarted  int64
	FlowsReleased int64
	Completed     int64
	Rejected      int64
	PeakActive    int
	// StaleDeliveries counts packets that arrived for a flow after its
	// release (caught by the generation check). Any nonzero value is a
	// lifecycle bug.
	StaleDeliveries int64
	// InjectedData/InjectedAcks count packets entering the forward and
	// reverse links — the conservation ledger's debit side.
	InjectedData uint64
	InjectedAcks uint64
}

// counter wraps a link destination, counting injected packets for the
// conservation ledger.
type counter struct {
	n   *uint64
	dst netem.Handler
}

func (c counter) HandlePacket(p *netem.Packet) {
	*c.n++
	c.dst.HandlePacket(p)
}

// CohortResult is one cohort's slice of a trial result.
type CohortResult struct {
	Name      string
	Reference bool
	Started   int64
	Completed int64
	// BytesAcked includes the partial progress of flows still live at the
	// measurement horizon.
	BytesAcked int64
	// MeanMbps is the cohort's delivered bytes over the full duration.
	MeanMbps float64
	// MeanFCTms averages completion time over completed flows (0 if none).
	MeanFCTms float64
	Lost      int64
	Spurious  int64
	// Points are the per-window (delay ms, throughput Mbps) samples inside
	// the truncated measurement interval — the PE machinery's input.
	Points []geom.Point
}

// Result is one many-flow trial's outcome.
type Result struct {
	Flows           int64
	Completed       int64
	Rejected        int64
	PeakActive      int
	Events          uint64
	Drops           uint64
	QueueHighwaterB int
	AggMbps         float64
	Cohorts         []CohortResult
	Stats           EngineStats
}

// Engine runs one many-flow trial on its own discrete-event engine. Every
// event costs O(1) work independent of the live-flow count: arrivals are
// one self-rescheduling event, packets demux through a map, window
// flushing is one periodic event over the (constant-size) cohort list, and
// flow completion touches only the completing flow.
type Engine struct {
	eng *sim.Engine
	cfg Config
	rng *stats.RNG

	clk transport.Clock // e.eng wrapped once; reused by every endpoint

	arrival   *stats.Exponential
	sizes     []*stats.BoundedPareto
	cum       []float64 // cumulative cohort fractions
	arrivalEv sim.EventID
	arriving  bool
	arrivalFn func() // onArrival, bound once (one alloc, not one per arrival)

	fwd      *netem.Link
	rev      *netem.Link
	fwdDemux *netem.Demux
	revDemux *netem.Demux
	fwdIn    netem.Handler // counting wrapper in front of fwd
	revIn    netem.Handler

	flows    map[int]*flowState
	nextID   int
	active   int
	flowFree []*flowState
	sndFree  []*transport.Sender
	rcvFree  []*transport.Receiver

	win     sim.Time
	trim    sim.Time
	cohorts []cohortAccum
	stats   EngineStats
}

// New validates cfg and builds the trial topology. The returned engine is
// single-use: call Run once.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Cohorts) != len(cfg.Spec.Cohorts) {
		return nil, fmt.Errorf("%w: %d resolved cohorts for %d specs",
			ErrSpec, len(cfg.Cohorts), len(cfg.Spec.Cohorts))
	}
	for i, co := range cfg.Cohorts {
		if co.NewController == nil {
			return nil, fmt.Errorf("%w: cohort %q has no controller factory", ErrSpec, cfg.Spec.Cohorts[i].Name)
		}
	}
	if cfg.Net.BottleneckBps <= 0 || cfg.Net.BaseRTT <= 0 {
		return nil, fmt.Errorf("%w: bottleneck %g bps / RTT %v", ErrSpec, cfg.Net.BottleneckBps, cfg.Net.BaseRTT)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("%w: duration %v", ErrSpec, cfg.Duration)
	}
	if cfg.Net.ReverseBps == 0 {
		cfg.Net.ReverseBps = cfg.Net.BottleneckBps * 40
	}
	if cfg.SampleRTTs <= 0 {
		cfg.SampleRTTs = 10
	}
	if cfg.TruncFrac == 0 {
		cfg.TruncFrac = 0.10
	}

	e := &Engine{
		eng:      sim.New(),
		cfg:      cfg,
		rng:      stats.NewRNG(cfg.Seed),
		fwdDemux: netem.NewDemux(),
		revDemux: netem.NewDemux(),
		flows:    make(map[int]*flowState, cfg.Spec.MaxConcurrent),
		nextID:   1,
		win:      sim.Time(cfg.SampleRTTs) * cfg.Net.BaseRTT,
		trim:     sim.Time(float64(cfg.Duration) * cfg.TruncFrac),
		cohorts:  make([]cohortAccum, len(cfg.Cohorts)),
	}
	e.clk = transport.SimClock(e.eng)
	e.arrivalFn = e.onArrival

	// Samplers share the trial RNG: draws interleave in event order, which
	// is deterministic on the single-threaded engine.
	if cfg.Spec.ArrivalPerSec > 0 {
		a, err := stats.NewExponential(e.rng, cfg.Spec.ArrivalPerSec)
		if err != nil {
			return nil, err
		}
		e.arrival = a
	}
	e.sizes = make([]*stats.BoundedPareto, len(cfg.Cohorts))
	var cum float64
	for i, c := range cfg.Spec.Cohorts {
		bp, err := stats.NewBoundedPareto(e.rng, c.SizeAlpha, c.MinBytes, c.MaxBytes)
		if err != nil {
			return nil, fmt.Errorf("cohort %q: %w", c.Name, err)
		}
		e.sizes[i] = bp
		cum += c.Fraction
		e.cum = append(e.cum, cum)
	}
	// Absorb float drift so the last cohort always catches u -> 1.
	e.cum[len(e.cum)-1] = 1

	lc := netem.LinkConfig{
		RateBps:     cfg.Net.BottleneckBps,
		Propagation: cfg.Net.BaseRTT / 2,
		QueueBytes:  cfg.Net.QueueBytes,
	}
	if cfg.Net.Jitter > 0 {
		lc.Jitter = cfg.Net.Jitter
		lc.JitterRNG = e.rng.Fork()
	}
	fwd, err := netem.NewLinkE(e.eng, lc, e.fwdDemux)
	if err != nil {
		return nil, fmt.Errorf("traffic: bottleneck: %w", err)
	}
	e.fwd = fwd
	rev, err := netem.NewLinkE(e.eng, netem.LinkConfig{
		RateBps:     cfg.Net.ReverseBps,
		Propagation: cfg.Net.BaseRTT / 2,
	}, e.revDemux)
	if err != nil {
		return nil, fmt.Errorf("traffic: reverse link: %w", err)
	}
	e.rev = rev
	e.fwdIn = counter{n: &e.stats.InjectedData, dst: fwd}
	e.revIn = counter{n: &e.stats.InjectedAcks, dst: rev}

	// Per-cohort delay samples from the bottleneck's delivery tap: sojourn
	// (queueing + serialization + forward propagation) plus the reverse
	// propagation — the RTT the network imposes, same as the two-flow
	// trial engine. The flow -> cohort lookup is one map access.
	halfRTT := cfg.Net.BaseRTT / 2
	fwd.Tap(func(ev netem.LinkEvent) {
		if ev.Kind != netem.Deliver || ev.Packet.IsAck {
			return
		}
		if fs, ok := e.flows[ev.Packet.Flow]; ok {
			acc := &e.cohorts[fs.cohort]
			acc.wRTTSum += ev.Sojourn + halfRTT
			acc.wRTTN++
		}
	})

	// Watchdog: sized from the throughput bound plus a per-flow overhead
	// allowance (handshakes of timers, PTO probes on thin flows).
	expectedPackets := uint64(cfg.Net.BottleneckBps*cfg.Duration.Seconds()/(8*1200))*2 + 1024
	expectedFlows := uint64(cfg.Spec.InitialFlows) + uint64(cfg.Spec.ArrivalPerSec*cfg.Duration.Seconds())
	wcfg := faults.WatchdogConfig{
		MaxEvents:   faults.EventBudget(expectedPackets + 64*expectedFlows),
		Deadline:    cfg.Deadline,
		Interrupted: cfg.Interrupted,
	}
	if cfg.Deadline > 0 || cfg.Interrupted != nil {
		wcfg.CheckEvery = 4096
	}
	faults.InstallWatchdog(e.eng, wcfg)
	return e, nil
}

// Sim exposes the underlying discrete-event engine (for taps and invariant
// probes scheduled by tests).
func (e *Engine) Sim() *sim.Engine { return e.eng }

// Forward exposes the bottleneck link (for packet-trace taps).
func (e *Engine) Forward() *netem.Link { return e.fwd }

// Stats returns a snapshot of the engine's lifecycle counters.
func (e *Engine) Stats() EngineStats { return e.stats }

// Active returns the number of live flows.
func (e *Engine) Active() int { return e.active }

// PoolSizes reports the free-list depths (flows, senders, receivers) for
// pool-discipline assertions.
func (e *Engine) PoolSizes() (flows, senders, receivers int) {
	return len(e.flowFree), len(e.sndFree), len(e.rcvFree)
}

// ForEachActive visits every live flow — an invariant-audit hook for
// property tests (cwnd/bytes-in-flight bounds). Visit order is map order:
// callers must only assert, never mutate or emit.
func (e *Engine) ForEachActive(fn func(id, cohort int, snd *transport.Sender, rcv *transport.Receiver)) {
	for id, fs := range e.flows {
		fn(id, fs.cohort, fs.snd, fs.rcv)
	}
}

// pickCohort draws the arriving flow's cohort from the cumulative fraction
// table. O(cohorts), and the cohort list is a small constant — never
// O(flows).
func (e *Engine) pickCohort() int {
	u := e.rng.Float64()
	for i, c := range e.cum {
		if u < c {
			return i
		}
	}
	return len(e.cum) - 1
}

// acquireFlow pops a recycled flowState — engine-local first, then the
// cross-engine tier — or allocates a fresh one.
func (e *Engine) acquireFlow() *flowState {
	if n := len(e.flowFree); n > 0 {
		fs := e.flowFree[n-1]
		e.flowFree = e.flowFree[:n-1]
		if fs.active {
			panic("traffic: pooled flow acquired while active")
		}
		return fs
	}
	if fs := adoptFlow(); fs != nil {
		return fs
	}
	return &flowState{}
}

// startFlow admits one flow at the current instant: cohort pick, size
// draw, endpoint acquisition from the pools, demux registration, start.
func (e *Engine) startFlow(now sim.Time) {
	ci := e.pickCohort()
	co := &e.cfg.Cohorts[ci]
	acc := &e.cohorts[ci]

	size := int64(e.sizes[ci].Sample())
	if size < 1 {
		size = 1
	}

	fs := e.acquireFlow()
	id := e.nextID
	e.nextID++
	fs.id = id
	fs.cohort = ci
	fs.size = size
	fs.start = now
	fs.active = true

	var rcv *transport.Receiver
	if n := len(e.rcvFree); n > 0 {
		rcv = e.rcvFree[n-1]
		e.rcvFree = e.rcvFree[:n-1]
		rcv.ResetFlow(co.Profile, e.revIn, id)
	} else if rcv = adoptReceiver(e.clk); rcv != nil {
		rcv.ResetFlow(co.Profile, e.revIn, id)
	} else {
		rcv = transport.NewReceiver(e.eng, co.Profile, e.revIn, id)
	}
	var snd *transport.Sender
	ctrl := co.NewController()
	if n := len(e.sndFree); n > 0 {
		snd = e.sndFree[n-1]
		e.sndFree = e.sndFree[:n-1]
		snd.ResetFlow(co.Profile, ctrl, e.fwdIn, id)
	} else if snd = adoptSender(e.clk); snd != nil {
		snd.ResetFlow(co.Profile, ctrl, e.fwdIn, id)
	} else {
		snd = transport.NewSender(e.eng, co.Profile, ctrl, e.fwdIn, id)
	}
	snd.SetFlowBytes(size)
	snd.OnComplete(func() { e.finishFlow(fs) })
	rcv.OnDeliver(func(d transport.DeliveredSample) {
		acc.wBytes += int64(d.Bytes)
		acc.bytesDelivered += int64(d.Bytes)
	})
	if e.cfg.Tracer != nil {
		snd.SetTracer(e.cfg.Tracer)
	}
	fs.snd = snd
	fs.rcv = rcv
	fs.fwdH = binding{e: e, fs: fs, gen: fs.gen}
	fs.revH = binding{e: e, fs: fs, gen: fs.gen, ack: true}
	e.fwdDemux.Register(id, &fs.fwdH)
	e.revDemux.Register(id, &fs.revH)
	e.flows[id] = fs

	e.active++
	if e.active > e.stats.PeakActive {
		e.stats.PeakActive = e.active
	}
	e.stats.FlowsStarted++
	acc.started++
	snd.Start()
}

// harvest folds a flow's transport counters into its cohort accumulator
// (called at completion and for survivors at the horizon).
func (e *Engine) harvest(fs *flowState, now sim.Time) {
	st := fs.snd.Stats
	acc := &e.cohorts[fs.cohort]
	acc.bytesAcked += st.BytesAcked
	acc.lost += st.PacketsLost
	acc.spurious += st.SpuriousLosses
	if e.cfg.Tracer != nil {
		e.cfg.Tracer.TransportSummary(now, fs.id, telemetry.TransportStats{
			PacketsSent:     uint64(st.PacketsSent),
			BytesSent:       uint64(st.BytesSent),
			PacketsAcked:    uint64(st.PacketsAcked),
			BytesAcked:      uint64(st.BytesAcked),
			PacketsLost:     uint64(st.PacketsLost),
			BytesLost:       uint64(st.BytesLost),
			SpuriousLosses:  uint64(st.SpuriousLosses),
			PTOCount:        uint64(st.PTOCount),
			PersistentCount: uint64(st.PersistentCount),
			RTTSamples:      uint64(st.RTTSamples),
		})
	}
}

// finishFlow retires a completed flow: accounting, demux unregistration,
// and recycling of every pooled object. Runs inside the completing ACK's
// event (the sender's OnComplete hook fires after all other processing),
// so it touches only this flow — O(1) in the live-flow count.
func (e *Engine) finishFlow(fs *flowState) {
	now := e.eng.Now()
	acc := &e.cohorts[fs.cohort]
	acc.completed++
	acc.fctSum += now - fs.start
	e.stats.Completed++
	e.harvest(fs, now)
	e.releaseFlow(fs)
}

// releaseFlow returns a flow's state to the pools and bumps its
// generation, making any event that still references the old incarnation
// detectable (binding.HandlePacket).
func (e *Engine) releaseFlow(fs *flowState) {
	if !fs.active {
		panic("traffic: double release of pooled flow")
	}
	e.fwdDemux.Unregister(fs.id)
	e.revDemux.Unregister(fs.id)
	delete(e.flows, fs.id)
	fs.snd.Stop()
	fs.rcv.Stop()
	e.sndFree = append(e.sndFree, fs.snd)
	e.rcvFree = append(e.rcvFree, fs.rcv)
	fs.snd = nil
	fs.rcv = nil
	fs.active = false
	fs.gen++
	e.flowFree = append(e.flowFree, fs)
	e.active--
	e.stats.FlowsReleased++
}

// onArrival admits (or rejects) one Poisson arrival and reschedules
// itself: exactly one pending arrival event exists at any time.
func (e *Engine) onArrival() {
	e.arriving = false
	now := e.eng.Now()
	if e.active >= e.cfg.Spec.MaxConcurrent {
		e.stats.Rejected++
	} else {
		e.startFlow(now)
	}
	e.scheduleArrival(now)
}

func (e *Engine) scheduleArrival(now sim.Time) {
	if e.arrival == nil {
		return
	}
	dt := sim.Time(e.arrival.Sample() * float64(sim.Second))
	if dt < 1 {
		dt = 1
	}
	if now+dt >= e.cfg.Duration {
		return // no arrivals past the horizon
	}
	e.arrivalEv = e.eng.At(now+dt, e.arrivalFn)
	e.arriving = true
}

// onWindow flushes every cohort's sampling window into its point series
// and reschedules. One event per window over a constant-size cohort list:
// sampling cost is independent of the live-flow count.
func (e *Engine) onWindow() {
	now := e.eng.Now()
	if now-e.win >= e.trim && now <= e.cfg.Duration-e.trim {
		for i := range e.cohorts {
			c := &e.cohorts[i]
			// A window needs both a delivery and an RTT sample to yield a
			// (delay, throughput) point, mirroring metrics.Points.
			if c.wBytes > 0 && c.wRTTN > 0 {
				delayMs := (c.wRTTSum / sim.Time(c.wRTTN)).Millis()
				mbps := float64(c.wBytes*8) / e.win.Seconds() / 1e6
				c.points = append(c.points, geom.Point{X: delayMs, Y: mbps})
			}
		}
	}
	for i := range e.cohorts {
		c := &e.cohorts[i]
		c.wBytes = 0
		c.wRTTSum = 0
		c.wRTTN = 0
	}
	if now+e.win <= e.cfg.Duration {
		e.eng.At(now+e.win, e.onWindow)
	}
}

// Run executes the trial: initial flows staggered across the first two
// RTTs, the Poisson arrival process until the horizon, then a full drain
// (stop every flow, let queued packets and timers play out) and the
// packet-conservation audit. The partial result accompanies any error.
func (e *Engine) Run() (*Result, error) {
	admit := func() {
		if e.active >= e.cfg.Spec.MaxConcurrent {
			e.stats.Rejected++
			return
		}
		e.startFlow(e.eng.Now())
	}
	for i := 0; i < e.cfg.Spec.InitialFlows; i++ {
		at := sim.Time(e.rng.Float64() * 2 * float64(e.cfg.Net.BaseRTT))
		e.eng.At(at, admit)
	}
	e.scheduleArrival(0)
	e.eng.At(e.win, e.onWindow)

	e.eng.RunUntil(e.cfg.Duration)
	if err := e.eng.Err(); err != nil {
		return e.result(), fmt.Errorf("traffic: trial aborted at %v: %w", e.eng.Now(), err)
	}

	// Horizon: stop the arrival process and every live flow, then drain.
	// Stopping only cancels timers, so map iteration order cannot affect
	// results. In-flight packets still deliver; stale ones for completed
	// flows are absorbed by the demux/binding checks.
	if e.arriving {
		e.eng.Cancel(e.arrivalEv)
		e.arriving = false
	}
	for _, fs := range e.flows {
		fs.snd.Stop()
		fs.rcv.Stop()
	}
	e.eng.Run()
	if err := e.eng.Err(); err != nil {
		return e.result(), fmt.Errorf("traffic: drain aborted at %v: %w", e.eng.Now(), err)
	}

	// Retire the survivors: their partial progress counts into cohort
	// totals (not FCT), and releasing them closes the pool ledger —
	// acquired == released, generation discipline fully exercised. Flow-id
	// order, not map order: harvest emits per-flow trace summaries, and
	// traces must be bit-identical across runs.
	now := e.eng.Now()
	ids := make([]int, 0, len(e.flows))
	for id := range e.flows {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	for _, id := range ids {
		fs := e.flows[id]
		e.harvest(fs, now)
		e.releaseFlow(fs)
	}

	res := e.result()
	if e.cfg.Tracer != nil {
		e.cfg.Tracer.TrialSummary(now, telemetry.TrialSummary{
			Events:           e.eng.Fired(),
			PendingHighwater: e.eng.PendingHighwater(),
			Drops:            e.fwd.Dropped,
			QueueHighwaterB:  e.fwd.QueueHighwater(),
		})
	}
	return res, e.CheckConservation()
}

// CheckConservation audits the packet ledger after a drain: every packet
// injected into a link must have been delivered or dropped, and both
// queues must be empty. Returns nil when the ledger balances.
func (e *Engine) CheckConservation() error {
	if got := e.fwd.Delivered + e.fwd.Dropped; got != e.stats.InjectedData {
		return fmt.Errorf("%w: forward link injected %d, delivered %d + dropped %d",
			ErrConservation, e.stats.InjectedData, e.fwd.Delivered, e.fwd.Dropped)
	}
	if got := e.rev.Delivered + e.rev.Dropped; got != e.stats.InjectedAcks {
		return fmt.Errorf("%w: reverse link injected %d, delivered %d + dropped %d",
			ErrConservation, e.stats.InjectedAcks, e.rev.Delivered, e.rev.Dropped)
	}
	if qb := e.fwd.QueueBytes(); qb != 0 {
		return fmt.Errorf("%w: %d bytes left in the bottleneck queue after drain", ErrConservation, qb)
	}
	if qb := e.rev.QueueBytes(); qb != 0 {
		return fmt.Errorf("%w: %d bytes left in the reverse queue after drain", ErrConservation, qb)
	}
	if e.stats.FlowsStarted != e.stats.FlowsReleased {
		return fmt.Errorf("%w: %d flows started, %d released",
			ErrConservation, e.stats.FlowsStarted, e.stats.FlowsReleased)
	}
	if e.stats.StaleDeliveries != 0 {
		return fmt.Errorf("%w: %d packets delivered to released flows", ErrConservation, e.stats.StaleDeliveries)
	}
	return nil
}

// result snapshots the trial outcome from the accumulators.
func (e *Engine) result() *Result {
	res := &Result{
		Flows:           e.stats.FlowsStarted,
		Completed:       e.stats.Completed,
		Rejected:        e.stats.Rejected,
		PeakActive:      e.stats.PeakActive,
		Events:          e.eng.Fired(),
		Drops:           e.fwd.Dropped,
		QueueHighwaterB: e.fwd.QueueHighwater(),
		Stats:           e.stats,
	}
	dur := e.cfg.Duration.Seconds()
	var total int64
	for i := range e.cohorts {
		c := &e.cohorts[i]
		cr := CohortResult{
			Name:       e.cfg.Spec.Cohorts[i].Name,
			Reference:  e.cfg.Spec.Cohorts[i].Reference,
			Started:    c.started,
			Completed:  c.completed,
			BytesAcked: c.bytesAcked,
			MeanMbps:   float64(c.bytesDelivered*8) / dur / 1e6,
			Lost:       c.lost,
			Spurious:   c.spurious,
			Points:     c.points,
		}
		if c.completed > 0 {
			cr.MeanFCTms = (c.fctSum / sim.Time(c.completed)).Millis()
		}
		total += c.bytesDelivered
		res.Cohorts = append(res.Cohorts, cr)
	}
	res.AggMbps = float64(total*8) / dur / 1e6
	return res
}
