package traffic_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/cc"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/stacks"
	"repro/internal/telemetry"
	"repro/internal/traffic"
	"repro/internal/transport"
)

// testSpec is the canonical mixed population: mostly short web-like flows,
// a bulk tail, and a reference-stack bulk cohort for PE evaluation.
func testSpec(arrivalPerSec float64, maxConc, initial int) traffic.Spec {
	return traffic.Spec{
		Cohorts: []traffic.CohortSpec{
			{Name: "web", Fraction: 0.90, Stack: "quicgo", CCA: "cubic",
				SizeAlpha: 1.2, MinBytes: 20e3, MaxBytes: 2e6},
			{Name: "bulk", Fraction: 0.05, Stack: "quicgo", CCA: "cubic",
				SizeAlpha: 1.5, MinBytes: 4e6, MaxBytes: 64e6},
			{Name: "ref-bulk", Fraction: 0.05, Stack: "kernel", CCA: "cubic",
				SizeAlpha: 1.5, MinBytes: 4e6, MaxBytes: 64e6, Reference: true},
		},
		ArrivalPerSec: arrivalPerSec,
		MaxConcurrent: maxConc,
		InitialFlows:  initial,
	}
}

// resolve builds the cohort list from the stack registry, the way
// internal/core does for real trials.
func resolve(t *testing.T, spec traffic.Spec) []traffic.Cohort {
	t.Helper()
	out := make([]traffic.Cohort, 0, len(spec.Cohorts))
	for _, c := range spec.Cohorts {
		st := stacks.Get(c.Stack)
		if st == nil {
			t.Fatalf("unknown stack %q", c.Stack)
		}
		cca := stacks.CCA(c.CCA)
		if !st.Has(cca) {
			t.Fatalf("stack %q has no CCA %q", c.Stack, c.CCA)
		}
		out = append(out, traffic.Cohort{
			Spec:          c,
			Profile:       st.Profile,
			NewController: func() cc.Controller { return st.NewController(cca) },
		})
	}
	return out
}

// TestManyFlowChurnInvariants runs the headline workload — a thousand
// concurrent flows churning through one bottleneck — and audits, while the
// trial is live, the per-flow transport invariants:
//
//   - bytes in flight is non-negative, and
//   - bytes in flight equals (sent - acked - lost) x MSS exactly (every
//     data packet is MSS-sized, and spuriously-lost packets stay counted
//     as lost), and
//   - the controller's congestion window stays positive, and
//   - the live population never exceeds the admission cap.
//
// After the drain it audits the conservation ledger, the pool discipline
// (every started flow released, free lists holding every pooled object,
// zero stale deliveries), and the packet pool's get/put balance.
func TestManyFlowChurnInvariants(t *testing.T) {
	flows, bps, arrival := 1000, 1000e6, 500.0
	dur := 2 * sim.Second
	if testing.Short() {
		flows, bps, arrival = 200, 200e6, 200.0
		dur = sim.Second
	}
	rtt := 20 * sim.Millisecond
	spec := testSpec(arrival, flows, flows)
	cohorts := resolve(t, spec)

	gets0, puts0, _ := netem.PoolStats()

	eng, err := traffic.New(traffic.Config{
		Spec:    spec,
		Cohorts: cohorts,
		Net: traffic.NetConfig{
			BottleneckBps: bps,
			BaseRTT:       rtt,
			QueueBytes:    netem.BDPBytes(bps, rtt),
			Jitter:        100 * sim.Microsecond,
		},
		Duration: dur,
		Seed:     42,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	// Probe every RTT while the trial runs. The probe only reads state, so
	// it cannot perturb the simulation.
	var probes, flowChecks int
	se := eng.Sim()
	var probe func()
	probe = func() {
		probes++
		if a := eng.Active(); a > spec.MaxConcurrent {
			t.Errorf("t=%v: %d active flows exceeds cap %d", se.Now(), a, spec.MaxConcurrent)
		}
		visited := 0
		eng.ForEachActive(func(id, cohort int, snd *transport.Sender, rcv *transport.Receiver) {
			visited++
			flowChecks++
			bif := snd.BytesInFlight()
			if bif < 0 {
				t.Errorf("t=%v flow %d: negative bytes in flight %d", se.Now(), id, bif)
			}
			mss := cohorts[cohort].Profile.MSS
			st := snd.Stats
			if want := int(st.PacketsSent-st.PacketsAcked-st.PacketsLost) * mss; bif != want {
				t.Errorf("t=%v flow %d: bytes in flight %d != (sent %d - acked %d - lost %d) x MSS %d = %d",
					se.Now(), id, bif, st.PacketsSent, st.PacketsAcked, st.PacketsLost, mss, want)
			}
			if cwnd := snd.Controller().CWND(); cwnd <= 0 {
				t.Errorf("t=%v flow %d: non-positive cwnd %d", se.Now(), id, cwnd)
			}
		})
		if visited != eng.Active() {
			t.Errorf("t=%v: visited %d flows, Active() reports %d", se.Now(), visited, eng.Active())
		}
		if next := se.Now() + rtt; next < dur {
			se.At(next, probe)
		}
	}
	se.At(rtt, probe)

	res, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if probes < 10 || flowChecks < 100 {
		t.Fatalf("probe coverage too thin: %d probes, %d flow checks", probes, flowChecks)
	}

	// Population shape: the cap was actually reached (this is a many-flow
	// test, not a trickle) and short flows completed and churned.
	if res.PeakActive < flows*9/10 {
		t.Errorf("peak active %d, want >= %d (workload never filled the bottleneck)", res.PeakActive, flows*9/10)
	}
	if res.Completed < int64(flows)/4 {
		t.Errorf("only %d of %d flows completed: no churn to exercise recycling", res.Completed, res.Flows)
	}
	if res.Flows <= int64(flows) {
		t.Errorf("started %d flows, want arrivals beyond the initial %d", res.Flows, flows)
	}

	// Lifecycle ledger (Run already ran CheckConservation; re-assert the
	// interesting counters explicitly).
	if eng.Active() != 0 {
		t.Errorf("%d flows still active after drain", eng.Active())
	}
	if res.Stats.FlowsStarted != res.Stats.FlowsReleased {
		t.Errorf("started %d != released %d", res.Stats.FlowsStarted, res.Stats.FlowsReleased)
	}
	if res.Stats.StaleDeliveries != 0 {
		t.Errorf("%d stale deliveries reached released flows", res.Stats.StaleDeliveries)
	}

	// Pool discipline: everything pooled came back, and churn means far
	// fewer endpoint objects were ever allocated than flows started.
	pf, ps, pr := eng.PoolSizes()
	if pf == 0 || ps == 0 || pr == 0 {
		t.Errorf("empty free lists after drain: flows %d senders %d receivers %d", pf, ps, pr)
	}
	if int64(ps) >= res.Flows || int64(pr) >= res.Flows {
		t.Errorf("no recycling: %d senders / %d receivers allocated for %d flows", ps, pr, res.Flows)
	}

	// Packet pool balance: every packet taken during the trial was
	// released (the pre-existing imbalance from other tests is subtracted).
	gets1, puts1, _ := netem.PoolStats()
	if d0, d1 := gets0-puts0, gets1-puts1; d0 != d1 {
		t.Errorf("packet pool leak: outstanding delta went %d -> %d (%d packets never released)",
			d0, d1, d1-d0)
	}

	// The measurement layer produced per-cohort samples.
	for _, c := range res.Cohorts {
		if c.Started == 0 {
			t.Errorf("cohort %s: no flows started", c.Name)
		}
		if len(c.Points) == 0 {
			t.Errorf("cohort %s: no (delay, throughput) sample points", c.Name)
		}
	}
	if res.AggMbps <= 0 {
		t.Errorf("aggregate throughput %.2f Mbps", res.AggMbps)
	}
}

// TestManyFlowDeterminism runs the identical seeded trial twice and demands
// bit-identical results and bit-identical qlog traces.
func TestManyFlowDeterminism(t *testing.T) {
	run := func() ([]byte, []byte) {
		spec := testSpec(100, 100, 50)
		var buf bytes.Buffer
		tr := telemetry.NewJSONL(&buf)
		tr.Header(telemetry.TraceMeta{Cell: "traffic-test", Role: "mf", Seed: 7})
		eng, err := traffic.New(traffic.Config{
			Spec:    spec,
			Cohorts: resolve(t, spec),
			Net: traffic.NetConfig{
				BottleneckBps: 200e6,
				BaseRTT:       20 * sim.Millisecond,
				QueueBytes:    netem.BDPBytes(200e6, 20*sim.Millisecond),
				Jitter:        100 * sim.Microsecond,
			},
			Duration: sim.Second,
			Seed:     7,
			Tracer:   tr,
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		tr.Flush()
		js, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return js, buf.Bytes()
	}
	res1, qlog1 := run()
	res2, qlog2 := run()
	if !bytes.Equal(res1, res2) {
		t.Errorf("same seed, different results:\n%s\n%s", res1, res2)
	}
	if !bytes.Equal(qlog1, qlog2) {
		t.Errorf("same seed, different qlog traces (%d vs %d bytes)", len(qlog1), len(qlog2))
	}
	if res, _ := run(); !bytes.Equal(res1, res) {
		t.Errorf("third run diverged from the first")
	}
}

// TestManyFlowAdmissionControl overloads a tiny cap and checks the
// Erlang-loss accounting.
func TestManyFlowAdmissionControl(t *testing.T) {
	spec := testSpec(2000, 8, 8)
	eng, err := traffic.New(traffic.Config{
		Spec:    spec,
		Cohorts: resolve(t, spec),
		Net: traffic.NetConfig{
			BottleneckBps: 20e6,
			BaseRTT:       20 * sim.Millisecond,
			QueueBytes:    netem.BDPBytes(20e6, 20*sim.Millisecond),
		},
		Duration: sim.Second,
		Seed:     3,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.PeakActive > 8 {
		t.Errorf("peak active %d exceeded cap 8", res.PeakActive)
	}
	if res.Rejected == 0 {
		t.Errorf("2000/s arrivals into a cap of 8 rejected nothing")
	}
	if res.Flows+res.Rejected < 100 {
		t.Errorf("arrival process barely ran: %d started + %d rejected", res.Flows, res.Rejected)
	}
}

// TestManyFlowConfigErrors exercises New's typed rejections.
func TestManyFlowConfigErrors(t *testing.T) {
	spec := testSpec(100, 100, 10)
	net := traffic.NetConfig{BottleneckBps: 100e6, BaseRTT: 20 * sim.Millisecond}

	cases := []struct {
		name string
		cfg  traffic.Config
	}{
		{"invalid_spec", traffic.Config{Spec: traffic.Spec{}, Net: net, Duration: sim.Second}},
		{"cohort_mismatch", traffic.Config{Spec: spec, Cohorts: nil, Net: net, Duration: sim.Second}},
		{"nil_controller", traffic.Config{Spec: spec,
			Cohorts: func() []traffic.Cohort {
				cs := resolve(t, spec)
				cs[1].NewController = nil
				return cs
			}(), Net: net, Duration: sim.Second}},
		{"bad_net", traffic.Config{Spec: spec, Cohorts: resolve(t, spec),
			Net: traffic.NetConfig{BottleneckBps: 0, BaseRTT: 20 * sim.Millisecond}, Duration: sim.Second}},
		{"bad_duration", traffic.Config{Spec: spec, Cohorts: resolve(t, spec), Net: net, Duration: 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := traffic.New(tc.cfg); !errors.Is(err, traffic.ErrSpec) {
				t.Errorf("err = %v, want ErrSpec", err)
			}
		})
	}
}

// TestManyFlowClosedPopulation checks the no-arrival mode: a fixed batch of
// flows runs to completion (or the horizon) with no Poisson process.
func TestManyFlowClosedPopulation(t *testing.T) {
	spec := testSpec(0, 64, 64)
	eng, err := traffic.New(traffic.Config{
		Spec:    spec,
		Cohorts: resolve(t, spec),
		Net: traffic.NetConfig{
			BottleneckBps: 200e6,
			BaseRTT:       10 * sim.Millisecond,
			QueueBytes:    netem.BDPBytes(200e6, 10*sim.Millisecond),
		},
		Duration: sim.Second,
		Seed:     11,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Flows != 64 {
		t.Errorf("started %d flows, want exactly the 64 initial ones", res.Flows)
	}
	if res.Completed == 0 {
		t.Errorf("no flow completed in a second at 200 Mbps")
	}
}
