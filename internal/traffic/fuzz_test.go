package traffic

import (
	"errors"
	"testing"
)

// FuzzParseSpec asserts the spec parser's total-function contract: arbitrary
// bytes either yield a spec that re-validates cleanly or a typed error
// wrapping ErrSpec — never a panic, never an untyped error. The checked-in
// corpus under testdata/fuzz/FuzzParseSpec seeds the interesting shapes
// (malformed fractions, zero rates, NaN sizes, unknown fields, trailing
// garbage) so `go test` exercises them on every run.
func FuzzParseSpec(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`not json`,
		`null`,
		`[]`,
		`{"cohorts": []}`,
		`{"cohorts": [{"name": "web", "fraction": 1, "stack": "quicgo", "cca": "cubic",
		  "size_alpha": 1.2, "min_bytes": 2e4, "max_bytes": 2e6}],
		  "arrival_per_sec": 100, "max_concurrent": 1000}`,
		// Malformed fraction: sums to 0.5.
		`{"cohorts": [{"name": "web", "fraction": 0.5, "stack": "quicgo", "cca": "cubic",
		  "size_alpha": 1.2, "min_bytes": 2e4, "max_bytes": 2e6}],
		  "arrival_per_sec": 100, "max_concurrent": 1000}`,
		// Zero rate with no initial flows.
		`{"cohorts": [{"name": "web", "fraction": 1, "stack": "quicgo", "cca": "cubic",
		  "size_alpha": 1.2, "min_bytes": 2e4, "max_bytes": 2e6}],
		  "arrival_per_sec": 0, "max_concurrent": 1000}`,
		// NaN is not valid JSON so it arrives as a syntax error; an immense
		// literal overflows float64 to +Inf instead.
		`{"cohorts": [{"name": "web", "fraction": 1, "stack": "quicgo", "cca": "cubic",
		  "size_alpha": 1.2, "min_bytes": 2e4, "max_bytes": NaN}],
		  "arrival_per_sec": 100, "max_concurrent": 1000}`,
		`{"cohorts": [{"name": "web", "fraction": 1, "stack": "quicgo", "cca": "cubic",
		  "size_alpha": 1.2, "min_bytes": 2e4, "max_bytes": 1e999}],
		  "arrival_per_sec": 100, "max_concurrent": 1000}`,
		// Unknown field and trailing garbage.
		`{"cohortz": []}`,
		`{"cohorts": []} trailing`,
		// Deep nesting and huge numbers.
		`{"cohorts": [[[[[[[[]]]]]]]]}`,
		`{"max_concurrent": 99999999999999999999999999}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSpec(data)
		if err != nil {
			if !errors.Is(err, ErrSpec) {
				t.Fatalf("untyped error %v for input %q", err, data)
			}
			return
		}
		if s == nil {
			t.Fatalf("nil spec with nil error for input %q", data)
		}
		if verr := s.Validate(); verr != nil {
			t.Fatalf("accepted spec fails re-validation: %v (input %q)", verr, data)
		}
	})
}
