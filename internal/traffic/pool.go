package traffic

import (
	"sync"

	"repro/internal/transport"
)

// Cross-engine recycling tier. A traffic engine is single-use — one trial,
// one Run — but a sweep runs thousands of trials back to back, and without
// a second pool tier every trial pays the full construction cost of its
// peak population (senders, receivers, flow slots) again. These pools let
// a finished engine donate its free lists so the next trial's population
// is adopted, not allocated: steady-state allocations per event become
// independent of the flow count, which is the property the committed
// many_flow_1000 bench gates.
//
// The tier is a bounded mutex-guarded stack rather than a sync.Pool on
// purpose: sync.Pool contents are dropped by the garbage collector, and a
// 1000-flow trial allocates enough to trigger several GC cycles, so pooled
// endpoints would silently vanish between trials and the measured
// allocs-per-event would swing run to run. A plain stack survives GC; the
// capacity bound keeps retention at roughly one peak population.
//
// Determinism: adopted objects carry no behavioral state across trials.
// Senders and receivers are fully re-initialized by ResetFlow (the
// fresh-vs-recycled equivalence is pinned by transport's
// TestResetFlowMatchesFreshSender), timers are rebound to the new trial's
// engine, and flowState fields are all reassigned at startFlow. The one
// surviving field is the flowState generation counter, which is
// deliberately monotonic per object — reuse-after-release detection does
// not reset between trials. Adoption order varies with pool contents run
// to run; the sweep-level journal and qlog byte-equality tests exist to
// prove that object identity never leaks into results.
const poolCap = 4096

var (
	poolMu   sync.Mutex
	sndPool  []*transport.Sender
	rcvPool  []*transport.Receiver
	flowPool []*flowState
)

// Release donates the engine's pooled free lists to the cross-engine tier
// and drops its references. Call it once after Run when the engine (and
// its results) are no longer needed; the engine must not be reused
// afterwards. Engines that skip Release just leave their objects to the
// garbage collector, as do donations past the tier's capacity bound.
func (e *Engine) Release() {
	poolMu.Lock()
	for i, s := range e.sndFree {
		if len(sndPool) < poolCap {
			sndPool = append(sndPool, s)
		}
		e.sndFree[i] = nil
	}
	for i, r := range e.rcvFree {
		if len(rcvPool) < poolCap {
			rcvPool = append(rcvPool, r)
		}
		e.rcvFree[i] = nil
	}
	for i, fs := range e.flowFree {
		if fs.active {
			poolMu.Unlock()
			panic("traffic: active flow on the free list at Release")
		}
		if len(flowPool) < poolCap {
			flowPool = append(flowPool, fs)
		}
		e.flowFree[i] = nil
	}
	poolMu.Unlock()
	e.sndFree = e.sndFree[:0]
	e.rcvFree = e.rcvFree[:0]
	e.flowFree = e.flowFree[:0]
}

// adoptSender pulls a donated sender from the cross-engine tier and moves
// it onto clk, or reports nil when the tier is empty.
func adoptSender(clk transport.Clock) *transport.Sender {
	poolMu.Lock()
	n := len(sndPool)
	if n == 0 {
		poolMu.Unlock()
		return nil
	}
	s := sndPool[n-1]
	sndPool[n-1] = nil
	sndPool = sndPool[:n-1]
	poolMu.Unlock()
	s.Rebind(clk)
	return s
}

// adoptReceiver is adoptSender for receivers.
func adoptReceiver(clk transport.Clock) *transport.Receiver {
	poolMu.Lock()
	n := len(rcvPool)
	if n == 0 {
		poolMu.Unlock()
		return nil
	}
	r := rcvPool[n-1]
	rcvPool[n-1] = nil
	rcvPool = rcvPool[:n-1]
	poolMu.Unlock()
	r.Rebind(clk)
	return r
}

// adoptFlow pulls a donated flow slot, or reports nil.
func adoptFlow() *flowState {
	poolMu.Lock()
	n := len(flowPool)
	if n == 0 {
		poolMu.Unlock()
		return nil
	}
	fs := flowPool[n-1]
	flowPool[n-1] = nil
	flowPool = flowPool[:n-1]
	poolMu.Unlock()
	return fs
}
