// Package traffic implements the many-flow traffic engine: one bottleneck
// link carrying thousands of concurrent flows with Poisson arrivals,
// heavy-tailed (bounded-Pareto) flow sizes, and short-flow churn. Flows are
// grouped into cohorts (e.g. 90% short web-like flows + 10% bulk, or a
// test stack vs a reference stack), each with its own transport profile and
// congestion controller, so conformance under realistic multiplexing load
// is measurable per population.
//
// Per-flow sender/receiver state comes from free-list pools and is fully
// recycled on completion; every event costs O(1) work independent of the
// number of live flows (see DESIGN.md).
package traffic

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
)

// Typed spec-validation failures. ErrSpec is the root every other sentinel
// wraps, so errors.Is(err, ErrSpec) matches any invalid traffic model while
// the finer sentinels pinpoint the field class.
var (
	ErrSpec           = errors.New("traffic: invalid spec")
	ErrSpecSyntax     = fmt.Errorf("%w: malformed JSON", ErrSpec)
	ErrNoCohorts      = fmt.Errorf("%w: no cohorts", ErrSpec)
	ErrBadFraction    = fmt.Errorf("%w: bad cohort fraction", ErrSpec)
	ErrBadSize        = fmt.Errorf("%w: bad flow-size parameters", ErrSpec)
	ErrBadRate        = fmt.Errorf("%w: bad arrival rate", ErrSpec)
	ErrBadConcurrency = fmt.Errorf("%w: bad concurrency bounds", ErrSpec)
	ErrDupCohort      = fmt.Errorf("%w: duplicate cohort name", ErrSpec)
)

// CohortSpec describes one flow population sharing the bottleneck.
type CohortSpec struct {
	// Name labels the cohort in reports ("web", "bulk", "ref-bulk"). Must
	// be unique within a Spec.
	Name string `json:"name"`
	// Fraction is the probability an arriving flow belongs to this cohort.
	// Fractions must sum to 1 (within a small tolerance).
	Fraction float64 `json:"fraction"`
	// Stack and CCA select the transport profile and congestion controller
	// from the stack registry (resolved by the caller — this package never
	// touches the registry, so specs validate without it).
	Stack string `json:"stack"`
	CCA   string `json:"cca"`
	// SizeAlpha, MinBytes, MaxBytes parameterize the bounded-Pareto flow
	// size distribution on [MinBytes, MaxBytes] with tail index SizeAlpha.
	SizeAlpha float64 `json:"size_alpha"`
	MinBytes  float64 `json:"min_bytes"`
	MaxBytes  float64 `json:"max_bytes"`
	// Reference marks the cohort whose samples build the reference
	// Performance Envelope; the other cohorts are evaluated against it.
	Reference bool `json:"reference,omitempty"`
}

// Spec is the serializable traffic-model block of a many-flow trial: the
// cohort mix plus the arrival/concurrency process. It rides inside
// core.CellTrialSpec, so isolated trial children and distributed workers
// reproduce the exact same flow population.
type Spec struct {
	Cohorts []CohortSpec `json:"cohorts"`
	// ArrivalPerSec is the Poisson arrival rate (flows per second of
	// virtual time). Zero disables arrivals — InitialFlows must then be
	// positive.
	ArrivalPerSec float64 `json:"arrival_per_sec"`
	// MaxConcurrent caps the live-flow population; arrivals beyond it are
	// rejected and counted (an Erlang-loss admission model).
	MaxConcurrent int `json:"max_concurrent"`
	// InitialFlows are started within the first two RTTs of the trial,
	// before the Poisson process takes over.
	InitialFlows int `json:"initial_flows,omitempty"`
}

// fractionTolerance bounds |sum(fractions) - 1|: wide enough for decimal
// literals like 3×0.333, tight enough to reject a forgotten cohort.
const fractionTolerance = 1e-6

// Validate checks the spec, reporting the first violation as a typed error
// wrapping ErrSpec. A validated spec is guaranteed to construct samplers
// and an engine without panicking.
func (s *Spec) Validate() error {
	if len(s.Cohorts) == 0 {
		return ErrNoCohorts
	}
	if math.IsNaN(s.ArrivalPerSec) || math.IsInf(s.ArrivalPerSec, 0) || s.ArrivalPerSec < 0 {
		return fmt.Errorf("%w: arrival_per_sec %g (want finite >= 0)", ErrBadRate, s.ArrivalPerSec)
	}
	if s.MaxConcurrent <= 0 {
		return fmt.Errorf("%w: max_concurrent %d (want > 0)", ErrBadConcurrency, s.MaxConcurrent)
	}
	if s.InitialFlows < 0 {
		return fmt.Errorf("%w: initial_flows %d (want >= 0)", ErrBadConcurrency, s.InitialFlows)
	}
	if s.InitialFlows > s.MaxConcurrent {
		return fmt.Errorf("%w: initial_flows %d exceeds max_concurrent %d",
			ErrBadConcurrency, s.InitialFlows, s.MaxConcurrent)
	}
	if s.ArrivalPerSec == 0 && s.InitialFlows == 0 {
		return fmt.Errorf("%w: arrival_per_sec 0 with initial_flows 0 models no traffic", ErrBadRate)
	}
	seen := make(map[string]bool, len(s.Cohorts))
	var sum float64
	for i, c := range s.Cohorts {
		if c.Name == "" {
			return fmt.Errorf("%w: cohort %d has no name", ErrSpec, i)
		}
		if seen[c.Name] {
			return fmt.Errorf("%w %q", ErrDupCohort, c.Name)
		}
		seen[c.Name] = true
		if math.IsNaN(c.Fraction) || c.Fraction < 0 || c.Fraction > 1 {
			return fmt.Errorf("%w: cohort %q fraction %g (want [0, 1])", ErrBadFraction, c.Name, c.Fraction)
		}
		sum += c.Fraction
		if math.IsNaN(c.SizeAlpha) || math.IsInf(c.SizeAlpha, 0) || c.SizeAlpha <= 0 {
			return fmt.Errorf("%w: cohort %q size_alpha %g (want positive finite)", ErrBadSize, c.Name, c.SizeAlpha)
		}
		if math.IsNaN(c.MinBytes) || math.IsNaN(c.MaxBytes) ||
			math.IsInf(c.MinBytes, 0) || math.IsInf(c.MaxBytes, 0) {
			return fmt.Errorf("%w: cohort %q size bounds [%g, %g] must be finite",
				ErrBadSize, c.Name, c.MinBytes, c.MaxBytes)
		}
		if c.MinBytes < 1 || c.MaxBytes <= c.MinBytes {
			return fmt.Errorf("%w: cohort %q size bounds [%g, %g] (want 1 <= min < max)",
				ErrBadSize, c.Name, c.MinBytes, c.MaxBytes)
		}
		if c.Stack == "" {
			return fmt.Errorf("%w: cohort %q has no stack", ErrSpec, c.Name)
		}
		if c.CCA == "" {
			return fmt.Errorf("%w: cohort %q has no cca", ErrSpec, c.Name)
		}
	}
	if math.Abs(sum-1) > fractionTolerance {
		return fmt.Errorf("%w: fractions sum to %g, want 1", ErrBadFraction, sum)
	}
	return nil
}

// ParseSpec decodes and validates a JSON traffic model. Unknown fields are
// rejected (a misspelled knob must not silently select a default). Every
// failure is a typed error wrapping ErrSpec; malformed input never panics.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSpecSyntax, err)
	}
	// Trailing garbage after the spec object is a syntax error too.
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data after spec object", ErrSpecSyntax)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}
