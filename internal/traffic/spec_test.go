package traffic

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func validSpec() Spec {
	return Spec{
		Cohorts: []CohortSpec{
			{Name: "web", Fraction: 0.9, Stack: "quicgo", CCA: "cubic",
				SizeAlpha: 1.2, MinBytes: 20e3, MaxBytes: 2e6},
			{Name: "bulk", Fraction: 0.1, Stack: "kernel", CCA: "cubic",
				SizeAlpha: 1.5, MinBytes: 4e6, MaxBytes: 64e6, Reference: true},
		},
		ArrivalPerSec: 200,
		MaxConcurrent: 1000,
		InitialFlows:  100,
	}
}

func TestSpecValidateOK(t *testing.T) {
	s := validSpec()
	if err := s.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	// Arrival-free (closed population) and initial-free (pure Poisson)
	// variants are both legal.
	s2 := validSpec()
	s2.ArrivalPerSec = 0
	if err := s2.Validate(); err != nil {
		t.Errorf("closed population rejected: %v", err)
	}
	s3 := validSpec()
	s3.InitialFlows = 0
	if err := s3.Validate(); err != nil {
		t.Errorf("pure Poisson rejected: %v", err)
	}
}

func TestSpecValidateErrors(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   error
	}{
		{"no_cohorts", func(s *Spec) { s.Cohorts = nil }, ErrNoCohorts},
		{"nan_rate", func(s *Spec) { s.ArrivalPerSec = nan }, ErrBadRate},
		{"negative_rate", func(s *Spec) { s.ArrivalPerSec = -1 }, ErrBadRate},
		{"inf_rate", func(s *Spec) { s.ArrivalPerSec = math.Inf(1) }, ErrBadRate},
		{"no_traffic", func(s *Spec) { s.ArrivalPerSec = 0; s.InitialFlows = 0 }, ErrBadRate},
		{"zero_concurrent", func(s *Spec) { s.MaxConcurrent = 0 }, ErrBadConcurrency},
		{"negative_initial", func(s *Spec) { s.InitialFlows = -1 }, ErrBadConcurrency},
		{"initial_over_cap", func(s *Spec) { s.InitialFlows = s.MaxConcurrent + 1 }, ErrBadConcurrency},
		{"fraction_sum_low", func(s *Spec) { s.Cohorts[0].Fraction = 0.5 }, ErrBadFraction},
		{"fraction_negative", func(s *Spec) { s.Cohorts[0].Fraction = -0.1 }, ErrBadFraction},
		{"fraction_nan", func(s *Spec) { s.Cohorts[0].Fraction = nan }, ErrBadFraction},
		{"fraction_over_one", func(s *Spec) { s.Cohorts[0].Fraction = 1.5 }, ErrBadFraction},
		{"alpha_zero", func(s *Spec) { s.Cohorts[0].SizeAlpha = 0 }, ErrBadSize},
		{"alpha_nan", func(s *Spec) { s.Cohorts[0].SizeAlpha = nan }, ErrBadSize},
		{"size_nan", func(s *Spec) { s.Cohorts[0].MinBytes = nan }, ErrBadSize},
		{"size_inf", func(s *Spec) { s.Cohorts[0].MaxBytes = math.Inf(1) }, ErrBadSize},
		{"size_zero_min", func(s *Spec) { s.Cohorts[0].MinBytes = 0 }, ErrBadSize},
		{"size_inverted", func(s *Spec) { s.Cohorts[0].MinBytes = 3e6; s.Cohorts[0].MaxBytes = 2e6 }, ErrBadSize},
		{"dup_name", func(s *Spec) { s.Cohorts[1].Name = s.Cohorts[0].Name }, ErrDupCohort},
		{"empty_name", func(s *Spec) { s.Cohorts[0].Name = "" }, ErrSpec},
		{"no_stack", func(s *Spec) { s.Cohorts[0].Stack = "" }, ErrSpec},
		{"no_cca", func(s *Spec) { s.Cohorts[0].CCA = "" }, ErrSpec},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := validSpec()
			tc.mutate(&s)
			err := s.Validate()
			if !errors.Is(err, tc.want) {
				t.Errorf("err = %v, want %v", err, tc.want)
			}
			if !errors.Is(err, ErrSpec) {
				t.Errorf("err = %v does not wrap ErrSpec", err)
			}
		})
	}
}

func TestParseSpec(t *testing.T) {
	good := `{
		"cohorts": [
			{"name": "web", "fraction": 0.9, "stack": "quicgo", "cca": "cubic",
			 "size_alpha": 1.2, "min_bytes": 20000, "max_bytes": 2000000},
			{"name": "bulk", "fraction": 0.1, "stack": "kernel", "cca": "cubic",
			 "size_alpha": 1.5, "min_bytes": 4000000, "max_bytes": 64000000, "reference": true}
		],
		"arrival_per_sec": 200,
		"max_concurrent": 1000,
		"initial_flows": 100
	}`
	s, err := ParseSpec([]byte(good))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if len(s.Cohorts) != 2 || s.Cohorts[1].Name != "bulk" || !s.Cohorts[1].Reference {
		t.Errorf("parsed spec wrong: %+v", s)
	}

	bad := []struct {
		name, in string
		want     error
	}{
		{"garbage", "not json", ErrSpecSyntax},
		{"empty", "", ErrSpecSyntax},
		{"unknown_field", `{"cohorts": [], "arival_per_sec": 1}`, ErrSpecSyntax},
		{"trailing", `{"cohorts": []} extra`, ErrSpecSyntax},
		{"no_cohorts", `{"arrival_per_sec": 1, "max_concurrent": 5}`, ErrNoCohorts},
		{"string_rate", `{"cohorts": [], "arrival_per_sec": "fast"}`, ErrSpecSyntax},
		{"bad_fraction", strings.Replace(good, "0.9", "0.7", 1), ErrBadFraction},
		{"zero_rate_no_initial", strings.Replace(strings.Replace(good,
			`"arrival_per_sec": 200`, `"arrival_per_sec": 0`, 1),
			`"initial_flows": 100`, `"initial_flows": 0`, 1), ErrBadRate},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec([]byte(tc.in))
			if !errors.Is(err, tc.want) {
				t.Errorf("err = %v, want %v", err, tc.want)
			}
		})
	}
}
