package transport

import "repro/internal/sim"

// Clock abstracts the timeline the endpoints run on: the deterministic
// discrete-event engine for experiments, or a real-time loop for driving
// actual UDP sockets (see internal/rtclock and examples/udplive).
type Clock interface {
	// Now returns the current time on this clock's timeline.
	Now() sim.Time
	// NewTimer returns a stopped one-shot timer invoking fn on this
	// clock's event loop when it fires.
	NewTimer(fn func()) TimerHandle
}

// TimerHandle is a restartable one-shot timer (the subset of sim.Timer the
// transport needs).
type TimerHandle interface {
	Reset(at sim.Time)
	ResetAfter(d sim.Time)
	Stop()
	Armed() bool
}

// simClock adapts *sim.Engine to Clock.
type simClock struct {
	eng *sim.Engine
}

// SimClock wraps a discrete-event engine as a transport clock.
func SimClock(eng *sim.Engine) Clock { return simClock{eng: eng} }

func (c simClock) Now() sim.Time { return c.eng.Now() }

func (c simClock) NewTimer(fn func()) TimerHandle {
	return sim.NewTimer(c.eng, fn)
}

// rebindTimer moves an existing timer handle onto clk's timeline without
// allocating, when both sides support it (sim timers on a sim clock). It
// reports whether the rebind happened; on false the caller must create a
// fresh timer.
func rebindTimer(h TimerHandle, clk Clock) bool {
	t, ok := h.(*sim.Timer)
	if !ok {
		return false
	}
	sc, ok := clk.(simClock)
	if !ok {
		return false
	}
	t.Rebind(sc.eng)
	return true
}
