package transport

import (
	"testing"

	"repro/internal/cc"
	"repro/internal/netem"
	"repro/internal/sim"
)

// startFinite wires one finite flow onto db and starts it, returning the
// sender and a pointer to its completion count.
func startFinite(eng *sim.Engine, db *netem.Dumbbell, flow int, bytes int64,
	snd *Sender, rcv *Receiver) *int {
	done := new(int)
	snd.SetFlowBytes(bytes)
	snd.OnComplete(func() { *done++ })
	db.AttachFlow(flow, rcv, netem.HandlerFunc(func(p *netem.Packet) {
		snd.HandlePacket(p)
	}))
	snd.Start()
	return done
}

func TestFiniteFlowCompletes(t *testing.T) {
	eng := sim.New()
	db := netem.NewDumbbell(eng, netem.DumbbellConfig{
		BottleneckBps: 20e6,
		BaseRTT:       10 * sim.Millisecond,
		// Unlimited buffer: slow-start overshoot queues instead of
		// dropping, so the clean-path assertions below see zero drops.
		QueueBytes: 0,
	})
	cfg := quicCfg()
	const flowBytes = 2_000_000
	rcv := NewReceiver(eng, cfg, netem.HandlerFunc(func(p *netem.Packet) {
		db.ReverseLink(1).HandlePacket(p)
	}), 1)
	snd := NewSender(eng, cfg, cc.NewCubic(cc.Config{MSS: 1200, HyStart: true}), db.Bottleneck, 1)
	done := startFinite(eng, db, 1, flowBytes, snd, rcv)

	eng.RunUntil(30 * sim.Second)
	if *done != 1 {
		t.Fatalf("OnComplete fired %d times, want exactly 1", *done)
	}
	if !snd.Completed() {
		t.Fatalf("Completed() false after OnComplete")
	}
	st := snd.Stats
	if st.BytesAcked < flowBytes {
		t.Errorf("completed with %d bytes acked, want >= %d", st.BytesAcked, flowBytes)
	}
	// Overshoot bound: the send gate re-checks acked+inflight before every
	// emission, so at most one quantum beyond the flow size leaks out (plus
	// loss make-up and PTO probes, absent on this clean path).
	if st.BytesAcked >= flowBytes+int64(cfg.withDefaults().MSS) {
		t.Errorf("acked %d bytes for a %d-byte flow: gate leaked", st.BytesAcked, flowBytes)
	}
	if st.PacketsLost != 0 {
		t.Errorf("unexpected losses on an uncongested path: %d", st.PacketsLost)
	}
	// Completion stopped the sender: the event queue drains with nothing
	// left in flight.
	eng.Run()
	if snd.BytesInFlight() != 0 {
		t.Errorf("%d bytes in flight after drain", snd.BytesInFlight())
	}
}

// TestFiniteFlowCompletesUnderLoss forces drops with a shallow buffer: lost
// bytes must be made up with fresh sequence numbers (the gate reopens), so
// the flow still completes.
func TestFiniteFlowCompletesUnderLoss(t *testing.T) {
	eng := sim.New()
	db := netem.NewDumbbell(eng, netem.DumbbellConfig{
		BottleneckBps: 20e6,
		BaseRTT:       10 * sim.Millisecond,
		QueueBytes:    netem.BDPBytes(20e6, 10*sim.Millisecond) / 10,
	})
	cfg := quicCfg()
	const flowBytes = 4_000_000
	rcv := NewReceiver(eng, cfg, netem.HandlerFunc(func(p *netem.Packet) {
		db.ReverseLink(1).HandlePacket(p)
	}), 1)
	snd := NewSender(eng, cfg, cc.NewCubic(cc.Config{MSS: 1200, HyStart: true}), db.Bottleneck, 1)
	done := startFinite(eng, db, 1, flowBytes, snd, rcv)

	eng.RunUntil(60 * sim.Second)
	st := snd.Stats
	if st.PacketsLost == 0 {
		t.Fatalf("shallow buffer produced no losses; test proves nothing")
	}
	if *done != 1 {
		t.Fatalf("flow with losses never completed (acked %d of %d)", st.BytesAcked, flowBytes)
	}
	if st.BytesAcked < flowBytes {
		t.Errorf("completed with %d bytes acked, want >= %d", st.BytesAcked, flowBytes)
	}
	// Send-gate bound, loss-adjusted: before every cwnd-gated emission
	// acked+inflight < flowBytes, so sent <= flowBytes + lost + one MSS,
	// plus one MSS per PTO probe (probes bypass the gate on purpose).
	mss := int64(cfg.withDefaults().MSS)
	if limit := flowBytes + st.BytesLost + mss*(1+st.PTOCount); st.BytesSent > limit {
		t.Errorf("sent %d bytes > gate bound %d (flow %d + lost %d + slack)",
			st.BytesSent, limit, int64(flowBytes), st.BytesLost)
	}
}

// runSequentialFlows runs two identical finite flows back to back on one
// dumbbell. When recycle is true the second flow reuses the first flow's
// sender/receiver via ResetFlow; otherwise it gets fresh objects. Both
// variants start the second flow at the identical virtual instant, so its
// stats must match exactly if ResetFlow restores a truly fresh state.
func runSequentialFlows(t *testing.T, recycle bool) (SenderStats, ReceiverStats) {
	t.Helper()
	eng := sim.New()
	db := netem.NewDumbbell(eng, netem.DumbbellConfig{
		BottleneckBps: 20e6,
		BaseRTT:       10 * sim.Millisecond,
		QueueBytes:    netem.BDPBytes(20e6, 10*sim.Millisecond) / 4, // lossy: exercise loss state reset
	})
	cfg := quicCfg()
	newCtrl := func() cc.Controller { return cc.NewCubic(cc.Config{MSS: 1200, HyStart: true}) }
	const flowBytes = 2_000_000

	rcv1 := NewReceiver(eng, cfg, netem.HandlerFunc(func(p *netem.Packet) {
		db.ReverseLink(1).HandlePacket(p)
	}), 1)
	snd1 := NewSender(eng, cfg, newCtrl(), db.Bottleneck, 1)
	done1 := startFinite(eng, db, 1, flowBytes, snd1, rcv1)
	eng.Run() // first flow completes and the network drains fully
	if *done1 != 1 {
		t.Fatalf("first flow never completed")
	}
	rcv1.Stop()

	var snd2 *Sender
	var rcv2 *Receiver
	revOut := netem.HandlerFunc(func(p *netem.Packet) {
		db.ReverseLink(2).HandlePacket(p)
	})
	if recycle {
		snd2, rcv2 = snd1, rcv1
		rcv2.ResetFlow(cfg, revOut, 2)
		snd2.ResetFlow(cfg, newCtrl(), db.Bottleneck, 2)
	} else {
		rcv2 = NewReceiver(eng, cfg, revOut, 2)
		snd2 = NewSender(eng, cfg, newCtrl(), db.Bottleneck, 2)
	}
	done2 := startFinite(eng, db, 2, flowBytes, snd2, rcv2)
	eng.Run()
	if *done2 != 1 {
		t.Fatalf("second flow never completed (recycle=%v)", recycle)
	}
	return snd2.Stats, rcv2.Stats
}

// TestResetFlowMatchesFreshSender pins the recycling contract: a sender and
// receiver reset in place behave bit-identically to freshly constructed
// ones in the same scenario.
func TestResetFlowMatchesFreshSender(t *testing.T) {
	freshS, freshR := runSequentialFlows(t, false)
	recycS, recycR := runSequentialFlows(t, true)
	if freshS != recycS {
		t.Errorf("recycled sender diverged from fresh:\nfresh   %+v\nrecycled %+v", freshS, recycS)
	}
	if freshR != recycR {
		t.Errorf("recycled receiver diverged from fresh:\nfresh   %+v\nrecycled %+v", freshR, recycR)
	}
}

// TestFiniteFlowSendGateProperty samples the gate invariant while a lossy
// finite flow runs: outside PTO probes, bytes sent never outrun the flow
// size by more than lost bytes plus one MSS.
func TestFiniteFlowSendGateProperty(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		eng := sim.New()
		db := netem.NewDumbbell(eng, netem.DumbbellConfig{
			BottleneckBps: 20e6,
			BaseRTT:       10 * sim.Millisecond,
			QueueBytes:    netem.BDPBytes(20e6, 10*sim.Millisecond) / int(2*seed),
		})
		cfg := quicCfg()
		mss := int64(cfg.withDefaults().MSS)
		const flowBytes = 3_000_000
		rcv := NewReceiver(eng, cfg, netem.HandlerFunc(func(p *netem.Packet) {
			db.ReverseLink(1).HandlePacket(p)
		}), 1)
		snd := NewSender(eng, cfg, cc.NewCubic(cc.Config{MSS: 1200}), db.Bottleneck, 1)
		startFinite(eng, db, 1, flowBytes, snd, rcv)

		for step := sim.Time(0); step < 20*sim.Second; step += 5 * sim.Millisecond {
			eng.RunUntil(step)
			st := snd.Stats
			if limit := int64(flowBytes) + st.BytesLost + mss*(1+st.PTOCount); st.BytesSent > limit {
				t.Fatalf("seed %d t=%v: sent %d > bound %d (lost %d, pto %d)",
					seed, eng.Now(), st.BytesSent, limit, st.BytesLost, st.PTOCount)
			}
			if snd.Completed() {
				break
			}
		}
		if !snd.Completed() {
			t.Errorf("seed %d: flow never completed", seed)
		}
	}
}
