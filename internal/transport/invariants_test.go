package transport

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cc"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/stats"
)

// TestPropSendGateRespectsCwnd is the transport-level companion of the
// internal/cc invariant harness: across random seeded networks and all
// three controllers, every data packet the sender actually emits must obey
// the window — bytes in flight never exceed cwnd at the send decision —
// with the one documented exception of PTO probes, which RFC 9002 §6.2.4
// sends regardless of cwnd. Pacing stays finite and non-negative, and
// bytes in flight never go negative, throughout the run.
func TestPropSendGateRespectsCwnd(t *testing.T) {
	makers := []struct {
		name string
		mk   func() cc.Controller
	}{
		{"reno", func() cc.Controller { return cc.NewReno(cc.Config{MSS: 1200}) }},
		{"cubic", func() cc.Controller { return cc.NewCubic(cc.Config{MSS: 1200, HyStart: true}) }},
		{"bbr", func() cc.Controller { return cc.NewBBR(cc.Config{MSS: 1200}) }},
	}
	f := func(seed uint64, pick uint8) bool {
		m := makers[int(pick)%len(makers)]
		r := stats.NewRNG(seed)
		// A random small network: 5-45 Mbps, 4-24 ms RTT, 0.3-2.3 BDP of
		// buffer — shallow enough to force loss recovery on most seeds.
		bw := 5e6 + r.Float64()*40e6
		rtt := sim.Time(4+r.Intn(21)) * sim.Millisecond
		queue := int(float64(netem.BDPBytes(bw, rtt)) * (0.3 + 2*r.Float64()))

		eng := sim.New()
		db := netem.NewDumbbell(eng, netem.DumbbellConfig{
			BottleneckBps: bw,
			BaseRTT:       rtt,
			QueueBytes:    queue,
		})
		var tx *Sender
		cfg := Config{MSS: 1200}
		ctrl := m.mk()
		ok := true
		ptoSeen := int64(0)
		// The gate sits on the sender's own output: every emission is
		// either window-legal or attributable to a PTO that just fired.
		gate := netem.HandlerFunc(func(p *netem.Packet) {
			if tx.Stats.PTOCount > ptoSeen {
				ptoSeen = tx.Stats.PTOCount // probe: cwnd exemption
			} else if tx.BytesInFlight() > ctrl.CWND() {
				t.Logf("%s seed %d: in flight %d > cwnd %d at %v",
					m.name, seed, tx.BytesInFlight(), ctrl.CWND(), eng.Now())
				ok = false
			}
			if tx.BytesInFlight() < 0 {
				t.Logf("%s seed %d: negative bytes in flight %d", m.name, seed, tx.BytesInFlight())
				ok = false
			}
			if rate := ctrl.PacingRate(); rate < 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
				t.Logf("%s seed %d: pacing rate %v", m.name, seed, rate)
				ok = false
			}
			db.Bottleneck.HandlePacket(p)
		})
		rx := NewReceiver(eng, cfg, netem.HandlerFunc(func(p *netem.Packet) {
			db.ReverseLink(1).HandlePacket(p)
		}), 1)
		db.AttachFlow(1, rx, netem.HandlerFunc(func(p *netem.Packet) {
			tx.HandlePacket(p)
		}))
		tx = NewSender(eng, cfg, ctrl, gate, 1)
		tx.Start()
		eng.RunUntil(2 * sim.Second)
		if rx.Stats.PacketsReceived == 0 {
			t.Logf("%s seed %d: flow moved no data; harness broken", m.name, seed)
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
