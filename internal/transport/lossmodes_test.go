package transport

import (
	"testing"

	"repro/internal/cc"
	"repro/internal/netem"
	"repro/internal/sim"
)

// blackholeSender builds a sender whose packets are captured, never acked
// automatically; tests inject ACKs by hand.
func blackholeSender(eng *sim.Engine, cfg Config, ctrl cc.Controller) (*Sender, *[]*netem.Packet) {
	var sent []*netem.Packet
	s := NewSender(eng, cfg, ctrl, netem.HandlerFunc(func(p *netem.Packet) {
		sent = append(sent, p)
	}), 1)
	return s, &sent
}

func ackPacket(largest int64, ranges ...netem.AckRange) *netem.Packet {
	return &netem.Packet{Flow: 1, IsAck: true, LargestAcked: largest, Ranges: ranges}
}

func TestEagerTailLossMarksAboveLargestAcked(t *testing.T) {
	eng := sim.New()
	cfg := quicCfg()
	cfg.EagerTailLoss = true
	ctrl := cc.NewReno(cc.Config{MSS: 1200})
	s, sent := blackholeSender(eng, cfg, ctrl)
	s.Start()
	eng.RunUntil(sim.Millisecond)
	if len(*sent) < 10 {
		t.Fatalf("sent %d", len(*sent))
	}
	// Ack the first packet at 10 ms to establish an RTT (srtt = 10 ms).
	eng.At(10*sim.Millisecond, func() {
		s.HandlePacket(ackPacket(0, netem.AckRange{Smallest: 0, Largest: 0}))
	})
	// By 10 ms + eager threshold (~srtt), the unacked tail (all above
	// largestAcked=0) should be declared lost via the eager path.
	eng.RunUntil(60 * sim.Millisecond)
	if s.Stats.PacketsLost == 0 {
		t.Fatal("eager tail loss never marked the stalled tail")
	}
}

func TestStandardLossDetectionSparesTail(t *testing.T) {
	eng := sim.New()
	cfg := quicCfg() // EagerTailLoss off
	ctrl := cc.NewReno(cc.Config{MSS: 1200})
	s, _ := blackholeSender(eng, cfg, ctrl)
	s.Start()
	eng.RunUntil(sim.Millisecond)
	eng.At(10*sim.Millisecond, func() {
		s.HandlePacket(ackPacket(0, netem.AckRange{Smallest: 0, Largest: 0}))
	})
	// Without eager marking, packets above largestAcked are not declared
	// lost by the time threshold; only PTO probes fire.
	eng.RunUntil(40 * sim.Millisecond)
	if s.Stats.PacketsLost != 0 {
		t.Fatalf("standard detection marked %d tail packets lost", s.Stats.PacketsLost)
	}
}

func TestLossMarksFlightExtendsEvent(t *testing.T) {
	eng := sim.New()
	cfg := quicCfg()
	cfg.LossMarksFlight = true
	ctrl := cc.NewCubic(cc.Config{MSS: 1200, SpuriousLossRollback: true})
	s, sent := blackholeSender(eng, cfg, ctrl)
	s.Start()
	eng.RunUntil(sim.Millisecond)
	n := len(*sent)
	if n < 10 {
		t.Fatalf("sent %d", n)
	}
	// Establish RTT, then ack packets 4..6, leaving 0..3 to be declared
	// lost by packet threshold. Flight marking must extend the loss to the
	// tail packets sent within the horizon.
	eng.At(10*sim.Millisecond, func() {
		s.HandlePacket(ackPacket(6, netem.AckRange{Smallest: 4, Largest: 6}))
	})
	eng.RunUntil(12 * sim.Millisecond)
	if s.Stats.PacketsLost <= 4 {
		t.Fatalf("flight marking did not extend: lost=%d, want > 4", s.Stats.PacketsLost)
	}
	// Late acks of the marked tail are spurious and roll back the cubic
	// response.
	cwndAfterLoss := ctrl.CWND()
	eng.At(20*sim.Millisecond, func() {
		s.HandlePacket(ackPacket(int64(n-1), netem.AckRange{Smallest: 7, Largest: int64(n - 1)}))
	})
	eng.RunUntil(25 * sim.Millisecond)
	if s.Stats.SpuriousLosses == 0 {
		t.Fatal("no spurious losses after late tail acks")
	}
	if ctrl.CWND() <= cwndAfterLoss {
		t.Fatalf("rollback did not restore window: %d <= %d", ctrl.CWND(), cwndAfterLoss)
	}
}

func TestLossMarksFlightHarmlessWithoutLoss(t *testing.T) {
	// A clean run with flight marking enabled but no losses behaves
	// identically to standard config.
	run := func(mark bool) int64 {
		eng := sim.New()
		cfg := quicCfg()
		cfg.LossMarksFlight = mark
		ctrl := cc.NewReno(cc.Config{MSS: 1200})
		db := netem.NewDumbbell(eng, netem.DumbbellConfig{
			BottleneckBps: 20e6,
			BaseRTT:       10 * sim.Millisecond,
			QueueBytes:    1 << 20, // huge: no drops
		})
		var tx *Sender
		rx := NewReceiver(eng, cfg, netem.HandlerFunc(func(p *netem.Packet) {
			db.ReverseLink(1).HandlePacket(p)
		}), 1)
		db.AttachFlow(1, rx, netem.HandlerFunc(func(p *netem.Packet) { tx.HandlePacket(p) }))
		tx = NewSender(eng, cfg, ctrl, db.Bottleneck, 1)
		tx.Start()
		eng.RunUntil(3 * sim.Second)
		return rx.Stats.BytesReceived
	}
	if a, b := run(false), run(true); a != b {
		t.Fatalf("flight marking changed a lossless run: %d vs %d", a, b)
	}
}

func TestReceiverBoundsAckRanges(t *testing.T) {
	eng := sim.New()
	cfg := quicCfg()
	cfg.MaxAckRanges = 4
	var last *netem.Packet
	rx := NewReceiver(eng, cfg, netem.HandlerFunc(func(p *netem.Packet) { last = p }), 1)
	// Create many gaps: every other packet.
	for i := int64(0); i < 40; i += 2 {
		rx.HandlePacket(&netem.Packet{Flow: 1, Seq: i, Size: 1200})
	}
	if last == nil {
		t.Fatal("no ack")
	}
	if len(last.Ranges) > 4 {
		t.Fatalf("ranges = %d, want <= 4", len(last.Ranges))
	}
	// Newest first.
	if last.Ranges[0].Largest != last.LargestAcked {
		t.Fatalf("first range %v does not cover largest %d", last.Ranges[0], last.LargestAcked)
	}
}

func TestReceiverHistoryCompaction(t *testing.T) {
	eng := sim.New()
	cfg := quicCfg()
	cfg.MaxAckRanges = 4
	rx := NewReceiver(eng, cfg, netem.HandlerFunc(func(*netem.Packet) {}), 1)
	// Tons of isolated ranges; internal storage must stay bounded.
	for i := int64(0); i < 10000; i += 2 {
		rx.HandlePacket(&netem.Packet{Flow: 1, Seq: i, Size: 1200})
	}
	if n := len(rx.Ranges()); n > 16*cfg.MaxAckRanges {
		t.Fatalf("range history unbounded: %d", n)
	}
}

func TestQuantizedLossTimerStillFires(t *testing.T) {
	eng := sim.New()
	cfg := quicCfg()
	cfg.TimerGranularity = 8 * sim.Millisecond
	ctrl := cc.NewReno(cc.Config{MSS: 1200})
	s, _ := blackholeSender(eng, cfg, ctrl)
	s.Start()
	eng.RunUntil(5 * sim.Second)
	if s.Stats.PTOCount == 0 {
		t.Fatal("coarse timers broke the PTO path")
	}
}
