package transport

import (
	"sort"

	"repro/internal/netem"
	"repro/internal/sim"
)

// ReceiverStats aggregates receiver-side counters.
type ReceiverStats struct {
	PacketsReceived int64
	BytesReceived   int64
	AcksSent        int64
	// PacketsCorrupted counts arrivals discarded because the fault layer
	// damaged them in flight (netem.Packet.Corrupted). They are never
	// acknowledged, so the sender sees them as losses.
	PacketsCorrupted int64
}

// DeliveredSample records a data packet arrival for throughput measurement.
type DeliveredSample struct {
	Time  sim.Time
	Bytes int
}

// Receiver consumes data packets and produces ACKs according to the
// configured ACK policy: an ACK is sent after every AckEveryN-th data
// packet, or when MaxAckDelay expires with unacknowledged data pending.
type Receiver struct {
	clk  Clock
	cfg  Config
	out  netem.Handler // reverse path toward the sender
	flow int

	// Received sequence tracking as a sorted set of closed intervals,
	// newest last.
	ranges []netem.AckRange

	largestReceived   int64
	largestReceivedAt sim.Time
	unackedCount      int
	ackTimer          TimerHandle
	firstUnackedAt    sim.Time

	Stats ReceiverStats

	onDeliver []func(DeliveredSample)
}

// NewReceiver constructs a receiver whose ACKs go to out. It runs on the
// discrete-event engine; use NewReceiverWithClock for other timelines.
func NewReceiver(eng *sim.Engine, cfg Config, out netem.Handler, flow int) *Receiver {
	return NewReceiverWithClock(SimClock(eng), cfg, out, flow)
}

// NewReceiverWithClock constructs a receiver on an arbitrary clock.
func NewReceiverWithClock(clk Clock, cfg Config, out netem.Handler, flow int) *Receiver {
	cfg = cfg.withDefaults()
	r := &Receiver{
		clk:             clk,
		cfg:             cfg,
		out:             out,
		flow:            flow,
		largestReceived: -1,
	}
	r.ackTimer = clk.NewTimer(r.sendAck)
	return r
}

// OnDeliver registers a hook invoked for every received data packet.
func (r *Receiver) OnDeliver(fn func(DeliveredSample)) {
	r.onDeliver = append(r.onDeliver, fn)
}

// Stop disarms the delayed-ACK timer (flow departure). The receiver still
// accepts packets if handed any; callers unregister it from the demux
// first.
func (r *Receiver) Stop() { r.ackTimer.Stop() }

// ResetFlow re-initializes a recycled receiver in place for a new flow,
// preserving the ACK-range slice's capacity and the timer handle. After
// ResetFlow the receiver is indistinguishable from one freshly built by
// NewReceiverWithClock with the same arguments.
// Rebind moves the receiver onto a new clock, for pools that recycle
// receivers across simulation runs. See Sender.Rebind.
func (r *Receiver) Rebind(clk Clock) {
	r.clk = clk
	if !rebindTimer(r.ackTimer, clk) {
		r.ackTimer = clk.NewTimer(r.sendAck)
	}
}

func (r *Receiver) ResetFlow(cfg Config, out netem.Handler, flow int) {
	r.ackTimer.Stop()
	r.cfg = cfg.withDefaults()
	r.out = out
	r.flow = flow
	r.ranges = r.ranges[:0]
	r.largestReceived = -1
	r.largestReceivedAt = 0
	r.unackedCount = 0
	r.firstUnackedAt = 0
	r.Stats = ReceiverStats{}
	r.onDeliver = r.onDeliver[:0]
}

// HandlePacket implements netem.Handler for data packets.
func (r *Receiver) HandlePacket(pkt *netem.Packet) {
	// The receiver is the terminal consumer on the data path, so any
	// pool-managed packet is recycled on every return below.
	defer netem.ReleasePacket(pkt)
	if pkt.IsAck {
		return
	}
	if pkt.Corrupted {
		// A damaged packet consumed its slot on every link but carries no
		// usable payload: drop it without acknowledging, leaving the sender
		// to detect the gap through loss detection.
		r.Stats.PacketsCorrupted++
		return
	}
	now := r.clk.Now()
	r.Stats.PacketsReceived++
	r.Stats.BytesReceived += int64(pkt.Size)
	r.insertSeq(pkt.Seq)
	if pkt.Seq > r.largestReceived {
		r.largestReceived = pkt.Seq
		r.largestReceivedAt = now
	}
	for _, fn := range r.onDeliver {
		fn(DeliveredSample{Time: now, Bytes: pkt.Size})
	}
	if r.unackedCount == 0 {
		r.firstUnackedAt = now
	}
	r.unackedCount++
	if r.unackedCount >= r.cfg.AckEveryN {
		r.sendAck()
		return
	}
	if !r.ackTimer.Armed() {
		r.ackTimer.Reset(now + r.cfg.MaxAckDelay)
	}
}

// insertSeq adds seq to the interval set, merging neighbours.
func (r *Receiver) insertSeq(seq int64) {
	// Binary search for the insertion position (ranges sorted ascending).
	i := sort.Search(len(r.ranges), func(i int) bool {
		return r.ranges[i].Largest >= seq
	})
	if i < len(r.ranges) && r.ranges[i].Smallest <= seq {
		return // duplicate
	}
	// Try extending the right neighbour downward.
	if i < len(r.ranges) && r.ranges[i].Smallest == seq+1 {
		r.ranges[i].Smallest = seq
		// Merge with the left neighbour if now adjacent.
		if i > 0 && r.ranges[i-1].Largest == seq-1 {
			r.ranges[i-1].Largest = r.ranges[i].Largest
			r.ranges = append(r.ranges[:i], r.ranges[i+1:]...)
		}
		return
	}
	// Try extending the left neighbour upward.
	if i > 0 && r.ranges[i-1].Largest == seq-1 {
		r.ranges[i-1].Largest = seq
		return
	}
	// Fresh singleton interval.
	r.ranges = append(r.ranges, netem.AckRange{})
	copy(r.ranges[i+1:], r.ranges[i:])
	r.ranges[i] = netem.AckRange{Smallest: seq, Largest: seq}
}

// Ranges exposes a copy of the received intervals (ascending) for tests.
func (r *Receiver) Ranges() []netem.AckRange {
	return append([]netem.AckRange(nil), r.ranges...)
}

// sendAck emits an ACK packet covering the most recent ranges.
func (r *Receiver) sendAck() {
	if r.largestReceived < 0 {
		return
	}
	now := r.clk.Now()
	r.ackTimer.Stop()
	ackDelay := now - r.largestReceivedAt

	// Newest ranges first, bounded by MaxAckRanges. The pooled packet's
	// Ranges slice keeps its capacity across recycles, so steady-state ACK
	// generation allocates nothing.
	n := len(r.ranges)
	count := n
	if count > r.cfg.MaxAckRanges {
		count = r.cfg.MaxAckRanges
	}
	pkt := netem.GetPacket()
	pkt.Flow = r.flow
	pkt.IsAck = true
	pkt.Size = r.cfg.AckPacketBytes
	pkt.SentAt = now
	pkt.LargestAcked = r.largestReceived
	pkt.AckDelay = ackDelay
	for i := n - 1; i >= n-count; i-- {
		pkt.Ranges = append(pkt.Ranges, r.ranges[i])
	}

	// Old fully-acked history can be compacted: keep at most 4x the
	// advertised ranges so memory stays bounded on long runs.
	if n > 4*r.cfg.MaxAckRanges {
		r.ranges = append([]netem.AckRange(nil), r.ranges[n-2*r.cfg.MaxAckRanges:]...)
	}

	r.unackedCount = 0
	r.Stats.AcksSent++
	r.out.HandlePacket(pkt)
}
