package transport

import (
	"slices"

	"repro/internal/cc"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// sentPacket tracks an in-flight (or recently lost) data packet.
type sentPacket struct {
	seq    int64
	bytes  int
	sentAt sim.Time
	// Delivery-rate sampler snapshot (BBR-style).
	delivered     int64
	deliveredTime sim.Time
	firstSentTime sim.Time
	appLimited    bool

	acked bool
	lost  bool
}

// SenderStats aggregates sender-side counters for tests and reports.
type SenderStats struct {
	PacketsSent     int64
	BytesSent       int64
	PacketsAcked    int64
	BytesAcked      int64
	PacketsLost     int64
	BytesLost       int64
	SpuriousLosses  int64
	PTOCount        int64
	PersistentCount int64
	RTTSamples      int64
}

// RTTSample is one smoothed-RTT observation exposed to measurement code.
type RTTSample struct {
	Time   sim.Time
	RTT    sim.Time
	SRTT   sim.Time
	MinRTT sim.Time
}

// Sender is a bulk-transfer sender: it always has data to send, subject to
// the congestion controller's window and pacing rate. It consumes ACK
// packets via HandlePacket.
type Sender struct {
	clk  Clock
	cfg  Config
	ctrl cc.Controller
	out  netem.Handler
	flow int

	nextSeq       int64
	largestAcked  int64
	bytesInFlight int
	packets       map[int64]*sentPacket
	oldestUnacked int64

	// spFree recycles sentPacket records: a bulk sender churns through one
	// per packet, and without a free list every one is a garbage-collected
	// allocation on the hot path.
	spFree []*sentPacket
	spSlab []sentPacket // bulk-allocated backing for fresh records
	// ackedScratch is reused across ACKs for the newly-acked seq list,
	// eliminating the per-ACK slice allocation in RFC 9002 processing.
	ackedScratch []int64

	rtt rttEstimator

	// Delivery-rate sampler state.
	delivered     int64
	deliveredTime sim.Time
	firstSentTime sim.Time

	// Round-trip counting: a round ends when a packet sent at or after
	// roundEndSeq is acked.
	roundTrips  int64
	roundEndSeq int64

	// Pacing.
	nextSendAt sim.Time
	sendTimer  TimerHandle

	// Loss detection.
	lossTimer TimerHandle
	ptoCount  int

	started bool
	stopped bool

	// Finite-flow support (the many-flow traffic engine): flowBytes bounds
	// the bytes this flow carries (0 = unbounded bulk transfer), completed
	// latches once BytesAcked first covers it, and onComplete is the
	// engine's recycle hook. Lost bytes are made up by fresh packets, so
	// the gate in trySend naturally reopens after a loss.
	flowBytes  int64
	completed  bool
	onComplete func()

	// Stats and hooks.
	Stats      SenderStats
	onRTT      []func(RTTSample)
	onCwnd     []func(t sim.Time, cwnd int, inFlight int)
	appLimited bool

	// Structured telemetry. tracer is nil when tracing is disabled — every
	// hook below is guarded by that single nil check, so the disabled path
	// costs nothing. ssth caches the optional SSThresher assertion (done
	// once in SetTracer, never on the hot path); lastMetKey dedups
	// metrics_updated events; rangeScratch is reused by the wide-ACK-range
	// walk so its determinism sort never allocates in steady state.
	tracer       telemetry.Tracer
	ssth         cc.SSThresher
	lastMetKey   telemetry.Metrics
	rangeScratch []int64
}

// NewSender constructs a sender for the given flow that emits packets into
// out (typically the bottleneck link) and is driven by ctrl. It runs on
// the discrete-event engine; use NewSenderWithClock for other timelines.
func NewSender(eng *sim.Engine, cfg Config, ctrl cc.Controller, out netem.Handler, flow int) *Sender {
	return NewSenderWithClock(SimClock(eng), cfg, ctrl, out, flow)
}

// NewSenderWithClock constructs a sender on an arbitrary clock (e.g. the
// real-time loop used to drive real UDP sockets).
func NewSenderWithClock(clk Clock, cfg Config, ctrl cc.Controller, out netem.Handler, flow int) *Sender {
	cfg = cfg.withDefaults()
	s := &Sender{
		clk:  clk,
		cfg:  cfg,
		ctrl: ctrl,
		out:  out,
		flow: flow,
		// Pre-sized for a typical flight plus the lost-packet retention
		// window, so steady state never pays for map growth.
		packets:      make(map[int64]*sentPacket, 256),
		largestAcked: -1,
	}
	s.sendTimer = clk.NewTimer(s.trySend)
	s.lossTimer = clk.NewTimer(s.onLossTimer)
	return s
}

// Flow returns the flow id.
func (s *Sender) Flow() int { return s.flow }

// SetFlowBytes bounds the flow to the given number of application bytes
// (0 restores the default unbounded bulk transfer). Call before Start. The
// sender stops emitting once acked + in-flight bytes cover the flow and
// declares completion when BytesAcked first reaches the bound; bytes lost
// in flight reopen the send gate, so completion always covers every byte.
func (s *Sender) SetFlowBytes(bytes int64) { s.flowBytes = bytes }

// OnComplete registers fn to be invoked exactly once, after all other ACK
// processing, when a finite flow (SetFlowBytes) is fully acknowledged. The
// sender has already stopped itself when fn runs, so fn may safely recycle
// it. A second call replaces the hook (pooled senders re-register per
// flow).
func (s *Sender) OnComplete(fn func()) { s.onComplete = fn }

// Completed reports whether a finite flow has been fully acknowledged.
func (s *Sender) Completed() bool { return s.completed }

// ResetFlow re-initializes a recycled sender in place for a new flow,
// preserving the expensive-to-rebuild internals: the timer handles, the
// packets map's buckets, the sentPacket free list, and the ACK scratch
// slices. After ResetFlow the sender is indistinguishable from one freshly
// built by NewSenderWithClock with the same arguments.
// Rebind moves the sender onto a new clock, for pools that recycle
// senders across simulation runs. The sender must be stopped or completed
// on its old timeline; call ResetFlow afterwards to start a fresh flow.
// Sim-clock timers rebind in place; other clocks get fresh timers.
func (s *Sender) Rebind(clk Clock) {
	s.clk = clk
	if !rebindTimer(s.sendTimer, clk) {
		s.sendTimer = clk.NewTimer(s.trySend)
	}
	if !rebindTimer(s.lossTimer, clk) {
		s.lossTimer = clk.NewTimer(s.onLossTimer)
	}
}

func (s *Sender) ResetFlow(cfg Config, ctrl cc.Controller, out netem.Handler, flow int) {
	s.sendTimer.Stop()
	s.lossTimer.Stop()
	for seq, sp := range s.packets {
		s.forgetSent(seq, sp)
	}
	s.cfg = cfg.withDefaults()
	s.ctrl = ctrl
	s.out = out
	s.flow = flow
	s.nextSeq = 0
	s.largestAcked = -1
	s.bytesInFlight = 0
	s.oldestUnacked = 0
	s.rtt = rttEstimator{}
	s.delivered = 0
	s.deliveredTime = 0
	s.firstSentTime = 0
	s.roundTrips = 0
	s.roundEndSeq = 0
	s.nextSendAt = 0
	s.ptoCount = 0
	s.started = false
	s.stopped = false
	s.flowBytes = 0
	s.completed = false
	s.onComplete = nil
	s.Stats = SenderStats{}
	s.onRTT = s.onRTT[:0]
	s.onCwnd = s.onCwnd[:0]
	s.appLimited = false
	s.tracer = nil
	s.ssth = nil
	s.lastMetKey = telemetry.Metrics{}
}

// Controller exposes the congestion controller (for tests and tracing).
func (s *Sender) Controller() cc.Controller { return s.ctrl }

// SRTT returns the current smoothed RTT estimate (0 before any sample).
func (s *Sender) SRTT() sim.Time { return s.rtt.srtt }

// MinRTT returns the windowed minimum RTT estimate.
func (s *Sender) MinRTT() sim.Time { return s.rtt.minRTT }

// BytesInFlight returns the outstanding unacknowledged bytes.
func (s *Sender) BytesInFlight() int { return s.bytesInFlight }

// OnRTTSample registers a hook invoked on every RTT sample.
func (s *Sender) OnRTTSample(fn func(RTTSample)) { s.onRTT = append(s.onRTT, fn) }

// OnCwndSample registers a hook invoked after every ACK with the current
// congestion window and bytes in flight.
func (s *Sender) OnCwndSample(fn func(t sim.Time, cwnd, inFlight int)) {
	s.onCwnd = append(s.onCwnd, fn)
}

// SetTracer attaches a structured telemetry tracer (nil disables) under
// the sender's flow id, and forwards it to the congestion controller when
// it supports tracing. Call before Start so the trace opens with the
// initial controller state and metrics.
func (s *Sender) SetTracer(t telemetry.Tracer) {
	s.tracer = t
	s.ssth = nil
	if t == nil {
		return
	}
	s.ssth, _ = s.ctrl.(cc.SSThresher)
	if ts, ok := s.ctrl.(cc.TraceSetter); ok {
		ts.SetTracer(t, s.flow)
	}
}

// emitMetrics reports the current congestion metrics, deduplicating on
// everything except bytes-in-flight (which changes with every packet and
// would defeat the dedup without adding information loss events lack).
// Callers guarantee s.tracer != nil.
func (s *Sender) emitMetrics(now sim.Time) {
	m := telemetry.Metrics{
		CWND:       s.ctrl.CWND(),
		SSThresh:   -1,
		PacingRate: s.ctrl.PacingRate(),
		SRTT:       s.rtt.srtt,
		MinRTT:     s.rtt.minRTT,
		LatestRTT:  s.rtt.latest,
	}
	if s.ssth != nil {
		m.SSThresh = s.ssth.SSThresh()
	}
	if m == s.lastMetKey {
		return
	}
	s.lastMetKey = m
	m.BytesInFlight = s.bytesInFlight
	s.tracer.MetricsUpdated(now, s.flow, m)
}

// Start begins transmission.
func (s *Sender) Start() {
	if s.started {
		return
	}
	s.started = true
	if s.tracer != nil {
		s.emitMetrics(s.clk.Now())
	}
	s.trySend()
}

// Stop halts transmission (flows at experiment end).
func (s *Sender) Stop() {
	s.stopped = true
	s.sendTimer.Stop()
	s.lossTimer.Stop()
}

// quantize rounds a deadline up to the configured timer granularity,
// modelling host timer resolution.
func (s *Sender) quantize(t sim.Time) sim.Time {
	g := s.cfg.TimerGranularity
	if g <= sim.Time(1) {
		return t
	}
	if rem := t % g; rem != 0 {
		t += g - rem
	}
	return t
}

// trySend transmits as many packets as the window and pacer allow, then
// arms the send timer for the next opportunity.
func (s *Sender) trySend() {
	if s.stopped || !s.started {
		return
	}
	now := s.clk.Now()
	cwnd := s.ctrl.CWND()
	rate := s.ctrl.PacingRate()

	for s.bytesInFlight+s.cfg.MSS <= cwnd {
		if s.flowBytes > 0 && s.Stats.BytesAcked+int64(s.bytesInFlight) >= s.flowBytes {
			// Finite flow: everything is already acked or in flight. A loss
			// reduces bytesInFlight and the next ACK re-drives trySend, so
			// the gate reopens until BytesAcked covers the flow.
			return
		}
		if rate > 0 && s.nextSendAt > now {
			// Pacer gate: come back later.
			s.sendTimer.Reset(s.quantize(s.nextSendAt))
			return
		}
		s.sendPacket(now, s.cfg.MSS)
		if rate > 0 {
			// Advance the pacing clock. The burst budget is the larger of
			// the send quantum and one timer-granularity interval: a pacer
			// that can only wake every millisecond must be allowed to
			// catch up a millisecond's worth of packets, or granularity
			// caps the rate (QUIC stacks implement exactly this as their
			// pacing burst budget).
			interval := sim.Time(float64(s.cfg.MSS) / rate * float64(sim.Second))
			budget := s.quantumTime(rate)
			if s.cfg.TimerGranularity > budget {
				budget = s.cfg.TimerGranularity
			}
			if s.nextSendAt < now-budget {
				s.nextSendAt = now - budget
			}
			s.nextSendAt += interval
		}
		cwnd = s.ctrl.CWND()
		rate = s.ctrl.PacingRate()
	}
	// Window-limited: we will be re-driven by the next ACK. Nothing to arm.
}

// BurstSizer lets a congestion controller override the stack's pacing
// burst quantum (BBR paces smoothly; window-based CCAs use GSO-sized
// bursts).
type BurstSizer interface {
	PacingBurst(mss int) int
}

// quantumTime is the serialization time of the burst quantum at rate.
func (s *Sender) quantumTime(rate float64) sim.Time {
	quantum := s.cfg.SendQuantum
	if bs, ok := s.ctrl.(BurstSizer); ok {
		quantum = bs.PacingBurst(s.cfg.MSS)
	}
	return sim.Time(float64(quantum) / rate * float64(sim.Second))
}

// allocSent takes a sentPacket record from the free list, falling back to
// the allocator when the list is empty.
func (s *Sender) allocSent() *sentPacket {
	if n := len(s.spFree); n > 0 {
		sp := s.spFree[n-1]
		s.spFree = s.spFree[:n-1]
		return sp
	}
	// Slab-carve fresh records: one heap allocation per 64 instead of one
	// each while the in-flight window grows to its peak.
	if len(s.spSlab) == 0 {
		s.spSlab = make([]sentPacket, 64)
	}
	sp := &s.spSlab[0]
	s.spSlab = s.spSlab[1:]
	return sp
}

// forgetSent removes seq from the tracked set and recycles its record.
// Callers must not touch sp afterwards.
func (s *Sender) forgetSent(seq int64, sp *sentPacket) {
	delete(s.packets, seq)
	*sp = sentPacket{}
	s.spFree = append(s.spFree, sp)
}

// sendPacket emits one data packet and updates tracking state.
func (s *Sender) sendPacket(now sim.Time, bytes int) {
	seq := s.nextSeq
	s.nextSeq++
	if s.firstSentTime == 0 {
		s.firstSentTime = now
		s.deliveredTime = now
	}
	sp := s.allocSent()
	*sp = sentPacket{
		seq:           seq,
		bytes:         bytes,
		sentAt:        now,
		delivered:     s.delivered,
		deliveredTime: s.deliveredTime,
		firstSentTime: s.firstSentTime,
		appLimited:    s.appLimited,
	}
	s.packets[seq] = sp
	s.bytesInFlight += bytes
	s.Stats.PacketsSent++
	s.Stats.BytesSent += int64(bytes)
	s.ctrl.OnPacketSent(now, bytes, s.bytesInFlight)
	pkt := netem.GetPacket()
	pkt.Flow = s.flow
	pkt.Seq = seq
	pkt.Size = bytes
	pkt.SentAt = now
	s.out.HandlePacket(pkt)
	s.armLossTimer()
}

// HandlePacket implements netem.Handler for the reverse path: it consumes
// ACK packets.
func (s *Sender) HandlePacket(pkt *netem.Packet) {
	// The sender is the terminal consumer on the reverse path, so any
	// pool-managed packet is recycled on every return below.
	defer netem.ReleasePacket(pkt)
	if !pkt.IsAck || s.stopped || pkt.Corrupted {
		return
	}
	now := s.clk.Now()

	var (
		newlyAckedBytes int
		largestNewly    *sentPacket
		sawNew          bool
	)
	ackedSeqs := s.ackedScratch[:0]
	process := func(seq int64, sp *sentPacket) {
		if sp.acked {
			return
		}
		if sp.lost {
			// Late ACK of a declared-lost packet: spurious loss.
			s.Stats.SpuriousLosses++
			s.accountDelivered(now, sp)
			spuriousSentAt := sp.sentAt
			s.forgetSent(seq, sp)
			if s.tracer != nil {
				s.tracer.SpuriousLoss(now, s.flow, spuriousSentAt)
			}
			s.ctrl.OnSpuriousLoss(now, spuriousSentAt)
			return
		}
		sp.acked = true
		sawNew = true
		newlyAckedBytes += sp.bytes
		s.bytesInFlight -= sp.bytes
		s.Stats.PacketsAcked++
		s.Stats.BytesAcked += int64(sp.bytes)
		s.accountDelivered(now, sp)
		ackedSeqs = append(ackedSeqs, seq)
		if largestNewly == nil || sp.seq > largestNewly.seq {
			largestNewly = sp
		}
	}
	// Walk the ACK ranges. Ranges can span the entire received history
	// (the receiver merges intervals), so when a range is wider than the
	// set of packets we still track, iterate the tracked set instead of
	// the range to keep ACK processing O(outstanding), not O(lifetime).
	for _, rg := range pkt.Ranges {
		span := rg.Largest - rg.Smallest + 1
		if span > int64(len(s.packets)) {
			// Go map iteration order is random: collect the matching seqs
			// and sort so per-packet processing (and any telemetry it
			// emits) happens in the same descending order as the
			// narrow-range walk below, keeping traces seed-stable.
			match := s.rangeScratch[:0]
			for seq := range s.packets {
				if seq >= rg.Smallest && seq <= rg.Largest {
					match = append(match, seq)
				}
			}
			slices.Sort(match)
			for i := len(match) - 1; i >= 0; i-- {
				if sp, ok := s.packets[match[i]]; ok {
					process(match[i], sp)
				}
			}
			s.rangeScratch = match[:0]
			continue
		}
		for seq := rg.Largest; seq >= rg.Smallest; seq-- {
			if sp, ok := s.packets[seq]; ok {
				process(seq, sp)
			}
		}
	}
	if pkt.LargestAcked > s.largestAcked {
		s.largestAcked = pkt.LargestAcked
	}
	if !sawNew {
		// Pure duplicate or stale ACK: still run loss detection in case the
		// higher largestAcked exposes losses.
		s.detectLosses(now)
		if s.tracer != nil {
			s.emitMetrics(now)
		}
		s.trySend()
		return
	}

	// RTT sample from the largest newly acked packet (RFC 9002 §5.1).
	if largestNewly != nil && largestNewly.seq == pkt.LargestAcked {
		sample := now - largestNewly.sentAt
		s.rtt.update(sample, pkt.AckDelay, s.cfg.MaxAckDelay)
		s.Stats.RTTSamples++
		rs := RTTSample{Time: now, RTT: s.rtt.latest, SRTT: s.rtt.srtt, MinRTT: s.rtt.minRTT}
		for _, fn := range s.onRTT {
			fn(rs)
		}
	}

	// Round-trip accounting.
	if largestNewly != nil && largestNewly.seq >= s.roundEndSeq {
		s.roundTrips++
		s.roundEndSeq = s.nextSeq
	}

	// Delivery-rate sample (BBR-style) from the largest newly acked packet.
	var deliveryRate float64
	var sampleAppLimited bool
	if largestNewly != nil {
		deliveredDelta := s.delivered - largestNewly.delivered
		ackElapsed := s.deliveredTime - largestNewly.deliveredTime
		sendElapsed := largestNewly.sentAt - largestNewly.firstSentTime
		interval := ackElapsed
		if sendElapsed > interval {
			interval = sendElapsed
		}
		if interval > 0 {
			deliveryRate = float64(deliveredDelta) / interval.Seconds()
		}
		sampleAppLimited = largestNewly.appLimited
	}

	s.ptoCount = 0

	ev := cc.AckEvent{
		Now:              now,
		AckedBytes:       newlyAckedBytes,
		LargestAckedSent: largestNewly.sentAt,
		RTT:              s.rtt.latest,
		SRTT:             s.rtt.srtt,
		MinRTT:           s.rtt.minRTT,
		BytesInFlight:    s.bytesInFlight,
		DeliveryRate:     deliveryRate,
		IsAppLimited:     sampleAppLimited,
		RoundTrips:       s.roundTrips,
	}
	s.ctrl.OnAck(ev)

	// Acked packets can now be forgotten and their records recycled.
	for _, seq := range ackedSeqs {
		if sp, ok := s.packets[seq]; ok {
			s.forgetSent(seq, sp)
		}
	}
	s.ackedScratch = ackedSeqs[:0]

	s.detectLosses(now)
	for _, fn := range s.onCwnd {
		fn(now, s.ctrl.CWND(), s.bytesInFlight)
	}
	if s.tracer != nil {
		s.emitMetrics(now)
	}
	s.trySend()

	// Finite-flow completion, checked last so the hook can recycle the
	// sender: nothing below this point touches sender state.
	if s.flowBytes > 0 && !s.completed && s.Stats.BytesAcked >= s.flowBytes {
		s.completed = true
		s.Stop()
		if fn := s.onComplete; fn != nil {
			fn()
		}
	}
}

// accountDelivered updates the delivery-rate sampler totals. Following
// tcp_rate.c, the send-side sample window slides forward to the acked
// packet's transmit time so future samples measure recent behaviour, not
// the connection's lifetime average.
func (s *Sender) accountDelivered(now sim.Time, sp *sentPacket) {
	s.delivered += int64(sp.bytes)
	s.deliveredTime = now
	if sp.sentAt > s.firstSentTime {
		s.firstSentTime = sp.sentAt
	}
}

// detectLosses applies RFC 9002 §6.1 packet- and time-threshold loss
// detection and informs the controller. It also arms the loss timer for
// packets that are only "young" relative to the time threshold.
func (s *Sender) detectLosses(now sim.Time) {
	if s.largestAcked < 0 {
		return
	}
	threshold := s.lossTimeThreshold()
	// Eager tail marking uses the bare RTT estimate without the 9/8
	// margin: the whole point of modelling it is that the detector is
	// too hot.
	eagerThreshold := threshold * timeThresholdDen / timeThresholdNum
	var (
		lostBytes       int
		largestLostSent sim.Time
		oldestLostSent  sim.Time = -1
		newestLostSent  sim.Time
		earliestLossAt  sim.Time = -1
		largestLostSeq  int64    = -1
		// Per-trigger counts for telemetry; only maintained when tracing.
		nPkt, nTime, nEager, nFlight int
	)
	for seq, sp := range s.packets {
		if sp.acked || sp.lost {
			continue
		}
		if seq > s.largestAcked && !s.cfg.EagerTailLoss {
			continue
		}
		packetLost := seq <= s.largestAcked && s.largestAcked-seq >= s.cfg.PacketThreshold
		lossTime := sp.sentAt + threshold
		if seq > s.largestAcked {
			lossTime = sp.sentAt + eagerThreshold
		}
		timeLost := lossTime <= now
		if packetLost || timeLost {
			sp.lost = true
			lostBytes += sp.bytes
			s.bytesInFlight -= sp.bytes
			s.Stats.PacketsLost++
			s.Stats.BytesLost += int64(sp.bytes)
			if s.tracer != nil {
				switch {
				case packetLost:
					nPkt++
				case seq > s.largestAcked:
					nEager++
				default:
					nTime++
				}
			}
			if seq > largestLostSeq {
				largestLostSeq = seq
			}
			if sp.sentAt > largestLostSent {
				largestLostSent = sp.sentAt
			}
			if oldestLostSent < 0 || sp.sentAt < oldestLostSent {
				oldestLostSent = sp.sentAt
			}
			if sp.sentAt > newestLostSent {
				newestLostSent = sp.sentAt
			}
			continue
		}
		if earliestLossAt < 0 || lossTime < earliestLossAt {
			earliestLossAt = lossTime
		}
	}
	if lostBytes > 0 && s.cfg.LossMarksFlight {
		// Flight extension: the detector assumes the drop burst extends
		// into the unacknowledged tail and marks everything sent within
		// half an SRTT after the newest lost packet. The survivors among
		// them are acked shortly after and reported as spurious.
		horizon := newestLostSent + s.rtt.srtt/2
		for _, sp := range s.packets {
			if sp.acked || sp.lost || sp.sentAt > horizon {
				continue
			}
			sp.lost = true
			lostBytes += sp.bytes
			s.bytesInFlight -= sp.bytes
			s.Stats.PacketsLost++
			s.Stats.BytesLost += int64(sp.bytes)
			nFlight++
			if sp.sentAt > largestLostSent {
				largestLostSent = sp.sentAt
			}
			if sp.sentAt > newestLostSent {
				newestLostSent = sp.sentAt
			}
		}
		earliestLossAt = -1
	}
	if lostBytes > 0 {
		persistent := false
		if oldestLostSent >= 0 {
			pto := s.rtt.pto(s.cfg.MaxAckDelay, s.cfg.TimerGranularity)
			if newestLostSent-oldestLostSent > persistentCongestionThreshold*pto {
				persistent = true
				s.Stats.PersistentCount++
			}
		}
		if s.tracer != nil {
			s.tracer.PacketsLost(now, s.flow, telemetry.LossSample{
				LostBytes:       lostBytes,
				Packets:         nPkt + nTime + nEager + nFlight,
				PktThreshold:    nPkt,
				TimeThreshold:   nTime,
				EagerTail:       nEager,
				FlightReset:     nFlight,
				LargestLostSent: largestLostSent,
				Persistent:      persistent,
			})
		}
		s.ctrl.OnLoss(cc.LossEvent{
			Now:             now,
			LostBytes:       lostBytes,
			LargestLostSent: largestLostSent,
			BytesInFlight:   s.bytesInFlight,
			Persistent:      persistent,
		})
	}
	// Keep lost packets around for spurious-loss detection, but bound the
	// memory: drop lost entries older than 4 PTOs.
	horizon := now - 4*s.rtt.pto(s.cfg.MaxAckDelay, s.cfg.TimerGranularity)
	for seq, sp := range s.packets {
		if sp.lost && sp.sentAt < horizon {
			s.forgetSent(seq, sp)
		}
	}
	if earliestLossAt >= 0 {
		s.lossTimer.Reset(s.quantize(earliestLossAt))
	} else {
		s.armLossTimer()
	}
}

// lossTimeThreshold returns kTimeThreshold * max(srtt, latest_rtt).
func (s *Sender) lossTimeThreshold() sim.Time {
	base := s.rtt.srtt
	if s.rtt.latest > base {
		base = s.rtt.latest
	}
	if base == 0 {
		base = 100 * sim.Millisecond
	}
	t := base * timeThresholdNum / timeThresholdDen
	if t < s.cfg.TimerGranularity {
		t = s.cfg.TimerGranularity
	}
	return t
}

// armLossTimer arms the PTO timer when packets are outstanding.
func (s *Sender) armLossTimer() {
	if s.stopped {
		return
	}
	hasOutstanding := false
	for _, sp := range s.packets {
		if !sp.acked && !sp.lost {
			hasOutstanding = true
			break
		}
	}
	if !hasOutstanding {
		s.lossTimer.Stop()
		return
	}
	pto := s.rtt.pto(s.cfg.MaxAckDelay, s.cfg.TimerGranularity)
	// Exponential backoff, capped so repeated timeouts on a dead path
	// cannot overflow or push the deadline past any realistic run length.
	backoff := s.ptoCount
	if backoff > 6 {
		backoff = 6
	}
	pto <<= uint(backoff)
	s.lossTimer.Reset(s.quantize(s.clk.Now() + pto))
}

// onLossTimer fires on timeout: first run time-threshold loss detection;
// if nothing was declared, treat it as a PTO and send a probe.
func (s *Sender) onLossTimer() {
	if s.stopped {
		return
	}
	now := s.clk.Now()
	before := s.Stats.PacketsLost
	s.detectLosses(now)
	if s.Stats.PacketsLost != before {
		if s.tracer != nil {
			s.emitMetrics(now)
		}
		s.trySend()
		return
	}
	// PTO: probe with one packet regardless of cwnd (RFC 9002 §6.2.4).
	s.ptoCount++
	s.Stats.PTOCount++
	if s.tracer != nil {
		s.tracer.PTOExpired(now, s.flow, s.ptoCount)
	}
	s.sendPacket(now, s.cfg.MSS)
}
