// Package transport implements the QUIC-like transport endpoints that carry
// the experiment flows: a bulk-data Sender with RFC 9002 RTT estimation,
// packet- and time-threshold loss detection, PTO probes, persistent
// congestion detection, spurious-loss (late ACK) signalling, and pacing; and
// a Receiver with a configurable ACK policy (ACK-frequency and max-ack-delay)
// that generates QUIC-style ACK ranges.
//
// The same code runs the TCP-like kernel reference profile and all QUIC
// stack profiles; the Config knobs express the per-stack differences
// (MSS, ACK frequency, timer granularity, burst quantum).
package transport

import (
	"repro/internal/sim"
)

// Config carries the transport-level (stack profile) parameters.
type Config struct {
	// MSS is the data packet payload-on-wire size in bytes. QUIC stacks
	// use 1200-byte UDP datagrams; the kernel TCP reference uses 1448.
	MSS int
	// AckEveryN acknowledges every N-th data packet (QUIC default 2,
	// matching the standard's recommendation).
	AckEveryN int
	// MaxAckDelay bounds how long the receiver may withhold an ACK
	// (QUIC default 25 ms; kernel delayed-ACK timer is 40 ms).
	MaxAckDelay sim.Time
	// TimerGranularity quantizes all sender-side timer deadlines upward,
	// modelling the host's timer resolution (kernel: 1 ms). Coarser values
	// model sloppy event loops (the xquic stack artifact).
	TimerGranularity sim.Time
	// SendQuantum is the pacing burst allowance in bytes (default 32 MSS,
	// matching QUIC stacks' initial burst / GSO batching).
	SendQuantum int
	// PacketThreshold is the reordering threshold for loss declaration
	// (RFC 9002 default 3).
	PacketThreshold int64
	// AckPacketBytes is the on-wire size of a pure ACK (default 40).
	AckPacketBytes int
	// MaxAckRanges bounds the ranges carried per ACK (default 32).
	MaxAckRanges int
	// EagerTailLoss applies the time threshold to packets *above* the
	// largest acknowledged packet as well (standard RFC 9002 only marks
	// below it). Stacks with this behaviour declare tail packets lost
	// whenever the queue delay outgrows SRTT by more than 1/8 within an
	// RTT — marks that later prove spurious when the ACK arrives.
	EagerTailLoss bool
	// LossMarksFlight makes every loss event mark the entire outstanding
	// flight as lost (a "flight reset", as stacks that treat a loss
	// burst as losing the whole window do). The surviving packets are
	// acknowledged shortly after and show up as spurious losses — which
	// is precisely what arms quiche's RFC 8312bis rollback against
	// genuine congestion events.
	LossMarksFlight bool
}

func (c Config) withDefaults() Config {
	if c.MSS <= 0 {
		panic("transport: Config.MSS must be positive")
	}
	if c.AckEveryN <= 0 {
		c.AckEveryN = 2
	}
	if c.MaxAckDelay <= 0 {
		c.MaxAckDelay = 25 * sim.Millisecond
	}
	if c.TimerGranularity <= 0 {
		c.TimerGranularity = sim.Millisecond
	}
	if c.SendQuantum <= 0 {
		c.SendQuantum = 32 * c.MSS
	}
	if c.PacketThreshold <= 0 {
		c.PacketThreshold = 3
	}
	if c.AckPacketBytes <= 0 {
		c.AckPacketBytes = 40
	}
	if c.MaxAckRanges <= 0 {
		c.MaxAckRanges = 32
	}
	return c
}

// RFC 9002 loss-detection constants.
const (
	timeThresholdNum = 9
	timeThresholdDen = 8
	// persistentCongestionThreshold multiplies the PTO to decide
	// persistent congestion (RFC 9002 §7.6.1).
	persistentCongestionThreshold = 3
)

// rttEstimator implements RFC 9002 §5.
type rttEstimator struct {
	srtt    sim.Time
	rttvar  sim.Time
	minRTT  sim.Time
	latest  sim.Time
	hasData bool
}

// update processes one RTT sample with the peer-reported ack delay.
func (r *rttEstimator) update(sample, ackDelay, maxAckDelay sim.Time) {
	if sample <= 0 {
		return
	}
	r.latest = sample
	if !r.hasData {
		r.minRTT = sample
		r.srtt = sample
		r.rttvar = sample / 2
		r.hasData = true
		return
	}
	if sample < r.minRTT {
		r.minRTT = sample
	}
	adjusted := sample
	if ackDelay > maxAckDelay {
		ackDelay = maxAckDelay
	}
	if adjusted-ackDelay >= r.minRTT {
		adjusted -= ackDelay
	}
	d := r.srtt - adjusted
	if d < 0 {
		d = -d
	}
	r.rttvar = (3*r.rttvar + d) / 4
	r.srtt = (7*r.srtt + adjusted) / 8
}

// pto returns the probe timeout per RFC 9002 §6.2.1.
func (r *rttEstimator) pto(maxAckDelay, granularity sim.Time) sim.Time {
	if !r.hasData {
		return 2 * 500 * sim.Millisecond // kInitialRtt-based fallback
	}
	v := 4 * r.rttvar
	if v < granularity {
		v = granularity
	}
	return r.srtt + v + maxAckDelay
}
