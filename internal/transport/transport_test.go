package transport

import (
	"testing"

	"repro/internal/cc"
	"repro/internal/netem"
	"repro/internal/sim"
)

func quicCfg() Config {
	return Config{MSS: 1200}
}

func TestRTTEstimatorFirstSample(t *testing.T) {
	var r rttEstimator
	r.update(10*sim.Millisecond, 0, 25*sim.Millisecond)
	if r.srtt != 10*sim.Millisecond || r.minRTT != 10*sim.Millisecond {
		t.Fatalf("srtt=%v minRTT=%v", r.srtt, r.minRTT)
	}
	if r.rttvar != 5*sim.Millisecond {
		t.Fatalf("rttvar=%v, want 5ms", r.rttvar)
	}
}

func TestRTTEstimatorSmoothing(t *testing.T) {
	var r rttEstimator
	r.update(10*sim.Millisecond, 0, 25*sim.Millisecond)
	r.update(18*sim.Millisecond, 0, 25*sim.Millisecond)
	// srtt = 7/8*10 + 1/8*18 = 11 ms.
	if r.srtt != 11*sim.Millisecond {
		t.Fatalf("srtt = %v, want 11ms", r.srtt)
	}
	if r.minRTT != 10*sim.Millisecond {
		t.Fatalf("minRTT = %v", r.minRTT)
	}
}

func TestRTTEstimatorAckDelayAdjustment(t *testing.T) {
	var r rttEstimator
	r.update(10*sim.Millisecond, 0, 25*sim.Millisecond)
	// Sample 20 ms with 5 ms ack delay: adjusted 15 ms (>= minRTT).
	r.update(20*sim.Millisecond, 5*sim.Millisecond, 25*sim.Millisecond)
	want := (7*10*sim.Millisecond + 15*sim.Millisecond) / 8
	if r.srtt != want {
		t.Fatalf("srtt = %v, want %v", r.srtt, want)
	}
}

func TestRTTEstimatorAckDelayClampedToMax(t *testing.T) {
	var r rttEstimator
	r.update(10*sim.Millisecond, 0, 25*sim.Millisecond)
	// Reported delay 100 ms but max is 25: adjust by 25 only.
	r.update(50*sim.Millisecond, 100*sim.Millisecond, 25*sim.Millisecond)
	want := (7*10*sim.Millisecond + 25*sim.Millisecond) / 8
	if r.srtt != want {
		t.Fatalf("srtt = %v, want %v", r.srtt, want)
	}
}

func TestRTTEstimatorNoAdjustBelowMin(t *testing.T) {
	var r rttEstimator
	r.update(10*sim.Millisecond, 0, 25*sim.Millisecond)
	// 12 ms sample with 5 ms delay would fall below minRTT: use raw.
	r.update(12*sim.Millisecond, 5*sim.Millisecond, 25*sim.Millisecond)
	want := (7*10*sim.Millisecond + 12*sim.Millisecond) / 8
	if r.srtt != want {
		t.Fatalf("srtt = %v, want %v", r.srtt, want)
	}
}

func TestPTOFallbackBeforeSamples(t *testing.T) {
	var r rttEstimator
	if got := r.pto(25*sim.Millisecond, sim.Millisecond); got != sim.Second {
		t.Fatalf("initial PTO = %v, want 1s", got)
	}
}

func TestPTOFormula(t *testing.T) {
	var r rttEstimator
	r.update(10*sim.Millisecond, 0, 25*sim.Millisecond)
	// srtt=10ms rttvar=5ms: PTO = 10 + 4*5 + 25 = 55 ms.
	if got := r.pto(25*sim.Millisecond, sim.Millisecond); got != 55*sim.Millisecond {
		t.Fatalf("PTO = %v, want 55ms", got)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{MSS: 1200}.withDefaults()
	if c.AckEveryN != 2 || c.MaxAckDelay != 25*sim.Millisecond ||
		c.PacketThreshold != 3 || c.SendQuantum != 32*1200 ||
		c.AckPacketBytes != 40 || c.MaxAckRanges != 32 ||
		c.TimerGranularity != sim.Millisecond {
		t.Fatalf("defaults wrong: %+v", c)
	}
}

func TestConfigPanicsWithoutMSS(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Config{}.withDefaults()
}

func TestReceiverAcksEveryN(t *testing.T) {
	eng := sim.New()
	var acks []*netem.Packet
	rx := NewReceiver(eng, quicCfg(), netem.HandlerFunc(func(p *netem.Packet) {
		acks = append(acks, p)
	}), 1)
	for i := int64(0); i < 6; i++ {
		rx.HandlePacket(&netem.Packet{Flow: 1, Seq: i, Size: 1200})
	}
	if len(acks) != 3 {
		t.Fatalf("acks = %d, want 3 (every 2nd packet)", len(acks))
	}
	if acks[2].LargestAcked != 5 {
		t.Fatalf("largest acked = %d", acks[2].LargestAcked)
	}
}

func TestReceiverMaxAckDelayTimer(t *testing.T) {
	eng := sim.New()
	var acks []*netem.Packet
	var ackAt []sim.Time
	rx := NewReceiver(eng, quicCfg(), netem.HandlerFunc(func(p *netem.Packet) {
		acks = append(acks, p)
		ackAt = append(ackAt, eng.Now())
	}), 1)
	eng.At(10*sim.Millisecond, func() {
		rx.HandlePacket(&netem.Packet{Flow: 1, Seq: 0, Size: 1200})
	})
	eng.Run()
	if len(acks) != 1 {
		t.Fatalf("acks = %d, want 1 (delayed ack)", len(acks))
	}
	if ackAt[0] != 35*sim.Millisecond {
		t.Fatalf("ack at %v, want 35ms (10 + 25 max_ack_delay)", ackAt[0])
	}
	if acks[0].AckDelay != 25*sim.Millisecond {
		t.Fatalf("ack delay = %v", acks[0].AckDelay)
	}
}

func TestReceiverRangesWithGap(t *testing.T) {
	eng := sim.New()
	var last *netem.Packet
	rx := NewReceiver(eng, quicCfg(), netem.HandlerFunc(func(p *netem.Packet) { last = p }), 1)
	// Receive 0,1,3 (2 missing): after packet 3 the second ack fires
	// (count 2: 0,1 then 3 alone hits the timer... force with a 4th).
	for _, seq := range []int64{0, 1, 3, 4} {
		rx.HandlePacket(&netem.Packet{Flow: 1, Seq: seq, Size: 1200})
	}
	if last == nil {
		t.Fatal("no ack")
	}
	// Ranges newest-first: [3..4], [0..1].
	if len(last.Ranges) != 2 {
		t.Fatalf("ranges = %v", last.Ranges)
	}
	if last.Ranges[0] != (netem.AckRange{Smallest: 3, Largest: 4}) {
		t.Fatalf("newest range = %v", last.Ranges[0])
	}
	if last.Ranges[1] != (netem.AckRange{Smallest: 0, Largest: 1}) {
		t.Fatalf("older range = %v", last.Ranges[1])
	}
}

func TestReceiverMergesRanges(t *testing.T) {
	eng := sim.New()
	rx := NewReceiver(eng, quicCfg(), netem.HandlerFunc(func(*netem.Packet) {}), 1)
	for _, seq := range []int64{0, 2, 1} { // out of order, then merge
		rx.HandlePacket(&netem.Packet{Flow: 1, Seq: seq, Size: 1200})
	}
	rgs := rx.Ranges()
	if len(rgs) != 1 || rgs[0] != (netem.AckRange{Smallest: 0, Largest: 2}) {
		t.Fatalf("ranges = %v, want single [0..2]", rgs)
	}
}

func TestReceiverIgnoresDuplicates(t *testing.T) {
	eng := sim.New()
	rx := NewReceiver(eng, quicCfg(), netem.HandlerFunc(func(*netem.Packet) {}), 1)
	rx.HandlePacket(&netem.Packet{Flow: 1, Seq: 5, Size: 1200})
	rx.HandlePacket(&netem.Packet{Flow: 1, Seq: 5, Size: 1200})
	rgs := rx.Ranges()
	if len(rgs) != 1 || rgs[0] != (netem.AckRange{Smallest: 5, Largest: 5}) {
		t.Fatalf("ranges = %v", rgs)
	}
}

// runFlow wires one sender/receiver pair through a dumbbell and runs for
// the given duration, returning the receiver stats and sender.
func runFlow(t *testing.T, ctrl cc.Controller, cfg Config, duration sim.Time) (*Sender, *Receiver, *netem.Dumbbell) {
	t.Helper()
	eng := sim.New()
	db := netem.NewDumbbell(eng, netem.DumbbellConfig{
		BottleneckBps: 20e6,
		BaseRTT:       10 * sim.Millisecond,
		QueueBytes:    netem.BDPBytes(20e6, 10*sim.Millisecond), // 1 BDP
	})
	var tx *Sender
	var rx *Receiver
	rx = NewReceiver(eng, cfg, netem.HandlerFunc(func(p *netem.Packet) {
		db.ReverseLink(1).HandlePacket(p)
	}), 1)
	db.AttachFlow(1, rx, netem.HandlerFunc(func(p *netem.Packet) {
		tx.HandlePacket(p)
	}))
	tx = NewSender(eng, cfg, ctrl, db.Bottleneck, 1)
	tx.Start()
	eng.RunUntil(duration)
	return tx, rx, db
}

func TestSingleRenoFlowFillsLink(t *testing.T) {
	ctrl := cc.NewReno(cc.Config{MSS: 1200})
	_, rx, _ := runFlow(t, ctrl, quicCfg(), 10*sim.Second)
	gotMbps := float64(rx.Stats.BytesReceived) * 8 / 10 / 1e6
	if gotMbps < 17 || gotMbps > 20.5 {
		t.Fatalf("Reno throughput = %.2f Mbps, want ~19-20", gotMbps)
	}
}

func TestSingleCubicFlowFillsLink(t *testing.T) {
	ctrl := cc.NewCubic(cc.Config{MSS: 1200, HyStart: true})
	_, rx, _ := runFlow(t, ctrl, quicCfg(), 10*sim.Second)
	gotMbps := float64(rx.Stats.BytesReceived) * 8 / 10 / 1e6
	if gotMbps < 17 || gotMbps > 20.5 {
		t.Fatalf("CUBIC throughput = %.2f Mbps, want ~19-20", gotMbps)
	}
}

func TestSingleBBRFlowFillsLink(t *testing.T) {
	ctrl := cc.NewBBR(cc.Config{MSS: 1200})
	_, rx, _ := runFlow(t, ctrl, quicCfg(), 10*sim.Second)
	gotMbps := float64(rx.Stats.BytesReceived) * 8 / 10 / 1e6
	if gotMbps < 16 || gotMbps > 20.5 {
		t.Fatalf("BBR throughput = %.2f Mbps, want ~18-20", gotMbps)
	}
}

func TestSenderSeesLossesInShallowBuffer(t *testing.T) {
	ctrl := cc.NewCubic(cc.Config{MSS: 1200})
	tx, _, db := runFlow(t, ctrl, quicCfg(), 10*sim.Second)
	if db.Bottleneck.Dropped == 0 {
		t.Fatal("no drops at 1 BDP buffer under CUBIC; queue model broken")
	}
	if tx.Stats.PacketsLost == 0 {
		t.Fatal("sender never declared losses despite drops")
	}
}

func TestSenderRTTGrowsWithQueue(t *testing.T) {
	ctrl := cc.NewCubic(cc.Config{MSS: 1200})
	tx, _, _ := runFlow(t, ctrl, quicCfg(), 5*sim.Second)
	if tx.MinRTT() < 10*sim.Millisecond || tx.MinRTT() > 12*sim.Millisecond {
		t.Fatalf("minRTT = %v, want ~10ms", tx.MinRTT())
	}
	if tx.SRTT() <= tx.MinRTT() {
		t.Fatalf("srtt %v not above minRTT %v despite standing queue", tx.SRTT(), tx.MinRTT())
	}
}

func TestBytesInFlightNeverNegative(t *testing.T) {
	ctrl := cc.NewCubic(cc.Config{MSS: 1200})
	eng := sim.New()
	db := netem.NewDumbbell(eng, netem.DumbbellConfig{
		BottleneckBps: 20e6,
		BaseRTT:       10 * sim.Millisecond,
		QueueBytes:    12500, // 0.5 BDP: heavy loss
	})
	var tx *Sender
	rx := NewReceiver(eng, quicCfg(), netem.HandlerFunc(func(p *netem.Packet) {
		db.ReverseLink(1).HandlePacket(p)
	}), 1)
	db.AttachFlow(1, rx, netem.HandlerFunc(func(p *netem.Packet) {
		tx.HandlePacket(p)
		if tx.BytesInFlight() < 0 {
			t.Fatalf("bytes in flight went negative: %d", tx.BytesInFlight())
		}
	}))
	tx = NewSender(eng, quicCfg(), ctrl, db.Bottleneck, 1)
	tx.Start()
	eng.RunUntil(5 * sim.Second)
}

func TestAccountingConservation(t *testing.T) {
	ctrl := cc.NewCubic(cc.Config{MSS: 1200})
	tx, _, _ := runFlow(t, ctrl, quicCfg(), 5*sim.Second)
	// sent = acked + lost + in-flight (+ spurious corrections).
	acked := tx.Stats.PacketsAcked + tx.Stats.SpuriousLosses
	lost := tx.Stats.PacketsLost - tx.Stats.SpuriousLosses
	outstanding := tx.Stats.PacketsSent - acked - lost
	if outstanding < 0 {
		t.Fatalf("conservation violated: sent=%d acked=%d lost=%d",
			tx.Stats.PacketsSent, acked, lost)
	}
	// Outstanding should be bounded by the final window.
	if outstanding > int64(tx.Controller().CWND()/1200)+64 {
		t.Fatalf("too many unaccounted packets: %d", outstanding)
	}
}

func TestTimerGranularityQuantizes(t *testing.T) {
	eng := sim.New()
	cfg := quicCfg()
	cfg.TimerGranularity = 4 * sim.Millisecond
	s := NewSender(eng, cfg, cc.NewReno(cc.Config{MSS: 1200}), netem.HandlerFunc(func(*netem.Packet) {}), 1)
	if got := s.quantize(9 * sim.Millisecond); got != 12*sim.Millisecond {
		t.Fatalf("quantize(9ms) = %v, want 12ms", got)
	}
	if got := s.quantize(12 * sim.Millisecond); got != 12*sim.Millisecond {
		t.Fatalf("quantize(12ms) = %v, want 12ms", got)
	}
}

func TestPacedSenderSmoothsBursts(t *testing.T) {
	// A paced CUBIC (QUIC-style) should enqueue with smaller max queue
	// depth in the first RTT than an unpaced one. Use a modest quantum so
	// pacing (not the GSO burst default) dominates.
	maxQueue := func(pacingScale float64) int {
		eng := sim.New()
		db := netem.NewDumbbell(eng, netem.DumbbellConfig{
			BottleneckBps: 20e6,
			BaseRTT:       50 * sim.Millisecond,
			QueueBytes:    1 << 20,
		})
		peak := 0
		db.Bottleneck.Tap(func(ev netem.LinkEvent) {
			if ev.QueueB > peak {
				peak = ev.QueueB
			}
		})
		var tx *Sender
		rx := NewReceiver(eng, quicCfg(), netem.HandlerFunc(func(p *netem.Packet) {
			db.ReverseLink(1).HandlePacket(p)
		}), 1)
		db.AttachFlow(1, rx, netem.HandlerFunc(func(p *netem.Packet) { tx.HandlePacket(p) }))
		cfg := quicCfg()
		cfg.SendQuantum = 2 * cfg.MSS
		tx = NewSender(eng, cfg, cc.NewCubic(cc.Config{MSS: 1200, PacingScale: pacingScale}), db.Bottleneck, 1)
		tx.Start()
		eng.RunUntil(300 * sim.Millisecond)
		return peak
	}
	unpaced := maxQueue(0)
	paced := maxQueue(1.25)
	if paced >= unpaced {
		t.Fatalf("pacing did not reduce burst queue: paced=%d unpaced=%d", paced, unpaced)
	}
}

func TestSpuriousLossDetection(t *testing.T) {
	// Deliver an "old" packet's ack after it was declared lost by feeding
	// the sender crafted ACK packets directly.
	eng := sim.New()
	var sent []*netem.Packet
	ctrl := cc.NewCubic(cc.Config{MSS: 1200, SpuriousLossRollback: true})
	s := NewSender(eng, quicCfg(), ctrl, netem.HandlerFunc(func(p *netem.Packet) {
		sent = append(sent, p)
	}), 1)
	s.Start()
	eng.RunUntil(sim.Millisecond)
	if len(sent) < 10 {
		t.Fatalf("sender emitted %d packets, want initial window", len(sent))
	}
	// Ack packets 4..9, skipping 0..3 -> packet threshold declares 0..3 lost.
	eng.At(10*sim.Millisecond, func() {
		s.HandlePacket(&netem.Packet{
			Flow: 1, IsAck: true, LargestAcked: 9,
			Ranges: []netem.AckRange{{Smallest: 4, Largest: 9}},
		})
	})
	eng.RunUntil(15 * sim.Millisecond)
	if s.Stats.PacketsLost != 4 {
		t.Fatalf("lost = %d, want 4", s.Stats.PacketsLost)
	}
	cwndAfterLoss := ctrl.CWND()
	// Now the "lost" packets get acked late: spurious.
	eng.At(20*sim.Millisecond, func() {
		s.HandlePacket(&netem.Packet{
			Flow: 1, IsAck: true, LargestAcked: 9,
			Ranges: []netem.AckRange{{Smallest: 0, Largest: 9}},
		})
	})
	eng.RunUntil(25 * sim.Millisecond)
	if s.Stats.SpuriousLosses != 4 {
		t.Fatalf("spurious = %d, want 4", s.Stats.SpuriousLosses)
	}
	if ctrl.CWND() <= cwndAfterLoss {
		t.Fatalf("rollback did not restore window: %d <= %d", ctrl.CWND(), cwndAfterLoss)
	}
}

func TestPTOFiresWhenAllAcksLost(t *testing.T) {
	eng := sim.New()
	var sent int
	s := NewSender(eng, quicCfg(), cc.NewReno(cc.Config{MSS: 1200}), netem.HandlerFunc(func(p *netem.Packet) {
		sent++
	}), 1)
	s.Start()
	eng.RunUntil(5 * sim.Second)
	if s.Stats.PTOCount == 0 {
		t.Fatal("PTO never fired with a black-holed path")
	}
	if sent <= 10 {
		t.Fatal("probe packets were not sent")
	}
}

func TestSenderStopHaltsTraffic(t *testing.T) {
	eng := sim.New()
	var sent int
	s := NewSender(eng, quicCfg(), cc.NewReno(cc.Config{MSS: 1200}), netem.HandlerFunc(func(p *netem.Packet) {
		sent++
	}), 1)
	s.Start()
	eng.RunUntil(10 * sim.Millisecond)
	before := sent
	s.Stop()
	eng.RunUntil(5 * sim.Second)
	if sent != before {
		t.Fatalf("traffic after Stop: %d -> %d", before, sent)
	}
}

func TestRoundTripsAdvance(t *testing.T) {
	ctrl := cc.NewCubic(cc.Config{MSS: 1200})
	tx, _, _ := runFlow(t, ctrl, quicCfg(), 2*sim.Second)
	// ~10.5 ms RTT over 2 s => expect on the order of 100+ rounds.
	if tx.roundTrips < 50 {
		t.Fatalf("roundTrips = %d, want > 50", tx.roundTrips)
	}
}

func TestTwoFlowsShareBottleneck(t *testing.T) {
	eng := sim.New()
	db := netem.NewDumbbell(eng, netem.DumbbellConfig{
		BottleneckBps: 20e6,
		BaseRTT:       10 * sim.Millisecond,
		QueueBytes:    netem.BDPBytes(20e6, 10*sim.Millisecond),
	})
	mk := func(flow int) (*Sender, *Receiver) {
		var tx *Sender
		rx := NewReceiver(eng, quicCfg(), netem.HandlerFunc(func(p *netem.Packet) {
			db.ReverseLink(flow).HandlePacket(p)
		}), flow)
		db.AttachFlow(flow, rx, netem.HandlerFunc(func(p *netem.Packet) { tx.HandlePacket(p) }))
		tx = NewSender(eng, quicCfg(), cc.NewReno(cc.Config{MSS: 1200}), db.Bottleneck, flow)
		return tx, rx
	}
	tx1, rx1 := mk(1)
	tx2, rx2 := mk(2)
	tx1.Start()
	tx2.Start()
	eng.RunUntil(30 * sim.Second)
	t1 := float64(rx1.Stats.BytesReceived)
	t2 := float64(rx2.Stats.BytesReceived)
	share := t1 / (t1 + t2)
	if share < 0.35 || share > 0.65 {
		t.Fatalf("identical Reno flows shared unfairly: %.2f/%.2f", share, 1-share)
	}
	total := (t1 + t2) * 8 / 30 / 1e6
	if total < 17 {
		t.Fatalf("aggregate throughput = %.2f Mbps, want near 20", total)
	}
}
