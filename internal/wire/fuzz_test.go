package wire

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/netem"
	"repro/internal/sim"
)

// FuzzDecode feeds arbitrary datagrams to the parser. Invariants: Decode
// never panics, failures are one of the typed errors, and a successful
// decode re-encodes to a canonical form that is a fixed point of another
// decode/encode round (so nothing is invented or lost past the first
// canonicalization).
func FuzzDecode(f *testing.F) {
	// Seed corpus: a data packet, an ACK with ranges, and assorted edge
	// shapes (short, wrong magic, range count past the datagram end).
	var buf [2048]byte
	n, _ := Encode(buf[:], &netem.Packet{Flow: 3, Seq: 123456789, Size: 1200})
	f.Add(append([]byte(nil), buf[:n]...))
	n, _ = Encode(buf[:], &netem.Packet{
		Flow: 9, IsAck: true, LargestAcked: 4242, AckDelay: 25 * sim.Millisecond,
		Ranges: []netem.AckRange{{Smallest: 40, Largest: 4242}, {Smallest: 1, Largest: 30}},
	})
	f.Add(append([]byte(nil), buf[:n]...))
	f.Add([]byte{})
	f.Add([]byte{0x51})
	f.Add([]byte("not a datagram at all, just text"))
	f.Add([]byte{0x51, 1, 2, 255, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 2})

	f.Fuzz(func(t *testing.T, data []byte) {
		p1, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrShort) && !errors.Is(err, ErrMagic) {
				t.Fatalf("Decode returned an untyped error: %v", err)
			}
			return
		}
		b1 := make([]byte, p1.Size+headerLen+MaxRanges*rangeLen)
		n1, err := Encode(b1, p1)
		if err != nil {
			t.Fatalf("re-encode of decoded packet failed: %v", err)
		}
		p2, err := Decode(b1[:n1])
		if err != nil {
			t.Fatalf("decode of re-encoded packet failed: %v", err)
		}
		b2 := make([]byte, len(b1))
		n2, err := Encode(b2, p2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(b1[:n1], b2[:n2]) {
			t.Fatalf("canonical form is not a fixed point:\n first: %x\nsecond: %x", b1[:n1], b2[:n2])
		}
	})
}

// FuzzEncodeDecodeRoundTrip drives the encoder with arbitrary semantic
// fields and checks the decoder recovers them exactly (modulo the
// documented clamps: flow is one byte on the wire, at most MaxRanges ACK
// ranges travel).
func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	f.Add(byte(1), false, int64(7), int64(0), 300, []byte{})
	f.Add(byte(200), true, int64(1<<40), int64(12345678), 0, []byte{1, 0, 0, 0, 0, 0, 0, 40, 2})
	f.Add(byte(0), true, int64(-1), int64(-5), 0, bytes.Repeat([]byte{9}, 16*40))

	f.Fuzz(func(t *testing.T, flow byte, isAck bool, seq, delay int64, extra int, rangeBytes []byte) {
		pkt := &netem.Packet{Flow: int(flow)}
		if isAck {
			pkt.IsAck = true
			pkt.LargestAcked = seq
			pkt.AckDelay = sim.Time(delay)
			for i := 0; i+16 <= len(rangeBytes) && len(pkt.Ranges) < MaxRanges+8; i += 16 {
				pkt.Ranges = append(pkt.Ranges, netem.AckRange{
					Smallest: int64(rangeBytes[i]),
					Largest:  int64(rangeBytes[i+8]),
				})
			}
		} else {
			pkt.Seq = seq
			if extra < 0 {
				extra = -extra
			}
			pkt.Size = headerLen + extra%1400
		}
		buf := make([]byte, headerLen+MaxRanges*rangeLen+pkt.Size)
		n, err := Encode(buf, pkt)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := Decode(buf[:n])
		if err != nil {
			t.Fatalf("decode of freshly encoded packet: %v", err)
		}
		if got.Flow != int(flow) || got.IsAck != isAck {
			t.Fatalf("flow/ack mismatch: got %+v, sent %+v", got, pkt)
		}
		if isAck {
			if got.LargestAcked != seq || got.AckDelay != sim.Time(delay) {
				t.Fatalf("ack fields mismatch: got %+v, sent %+v", got, pkt)
			}
			want := pkt.Ranges
			if len(want) > MaxRanges {
				want = want[:MaxRanges]
			}
			if len(got.Ranges) != len(want) {
				t.Fatalf("range count %d, want %d", len(got.Ranges), len(want))
			}
			for i := range want {
				if got.Ranges[i] != want[i] {
					t.Fatalf("range %d: got %+v, want %+v", i, got.Ranges[i], want[i])
				}
			}
		} else {
			if got.Seq != seq || got.Size != pkt.Size {
				t.Fatalf("data fields mismatch: got %+v, sent %+v", got, pkt)
			}
		}
	})
}
