// Package wire serializes transport packets onto real UDP datagrams for
// the live-network mode (examples/udplive): the same netem.Packet the
// simulator passes by pointer is encoded to bytes on the wire, so the
// transport endpoints are oblivious to which network they run on.
//
// Layout (big endian):
//
//	byte    0      magic (0xQC = 0x51)
//	byte    1      flags (bit0: IsAck)
//	byte    2      flow id
//	byte    3      number of ACK ranges (ACK only)
//	int64   4..11  seq (data) / largest acked (ACK)
//	int64  12..19  ack delay in nanoseconds (ACK only)
//	ranges 20..    pairs of int64 (smallest, largest), ACK only
//	padding        data packets are padded to their on-wire Size
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/netem"
	"repro/internal/sim"
)

const (
	magic     = 0x51
	flagAck   = 1
	headerLen = 20
	rangeLen  = 16
	// MaxRanges bounds ACK size on the wire.
	MaxRanges = 32
)

// ErrShort reports a truncated datagram.
var ErrShort = errors.New("wire: datagram too short")

// ErrMagic reports a foreign datagram.
var ErrMagic = errors.New("wire: bad magic")

// Encode serializes pkt into buf and returns the number of bytes used.
// Data packets are padded to pkt.Size; buf must be at least that large
// (and at least headerLen + used ranges for ACKs).
func Encode(buf []byte, pkt *netem.Packet) (int, error) {
	need := headerLen
	nRanges := len(pkt.Ranges)
	if nRanges > MaxRanges {
		nRanges = MaxRanges
	}
	if pkt.IsAck {
		need += nRanges * rangeLen
	}
	if pkt.Size > need {
		need = pkt.Size
	}
	if len(buf) < need {
		return 0, fmt.Errorf("wire: buffer %d < %d", len(buf), need)
	}
	buf[0] = magic
	buf[1] = 0
	buf[2] = byte(pkt.Flow)
	buf[3] = 0
	if pkt.IsAck {
		buf[1] |= flagAck
		buf[3] = byte(nRanges)
		binary.BigEndian.PutUint64(buf[4:], uint64(pkt.LargestAcked))
		binary.BigEndian.PutUint64(buf[12:], uint64(pkt.AckDelay))
		off := headerLen
		for _, rg := range pkt.Ranges[:nRanges] {
			binary.BigEndian.PutUint64(buf[off:], uint64(rg.Smallest))
			binary.BigEndian.PutUint64(buf[off+8:], uint64(rg.Largest))
			off += rangeLen
		}
		return off, nil
	}
	binary.BigEndian.PutUint64(buf[4:], uint64(pkt.Seq))
	binary.BigEndian.PutUint64(buf[12:], 0)
	for i := headerLen; i < need; i++ {
		buf[i] = 0
	}
	return need, nil
}

// Decode parses a datagram into a netem.Packet. Size is set to the
// datagram length.
func Decode(data []byte) (*netem.Packet, error) {
	if len(data) < headerLen {
		return nil, ErrShort
	}
	if data[0] != magic {
		return nil, ErrMagic
	}
	pkt := &netem.Packet{
		Flow: int(data[2]),
		Size: len(data),
	}
	if data[1]&flagAck != 0 {
		pkt.IsAck = true
		pkt.LargestAcked = int64(binary.BigEndian.Uint64(data[4:]))
		pkt.AckDelay = sim.Time(binary.BigEndian.Uint64(data[12:]))
		n := int(data[3])
		if len(data) < headerLen+n*rangeLen {
			return nil, ErrShort
		}
		off := headerLen
		for i := 0; i < n; i++ {
			pkt.Ranges = append(pkt.Ranges, netem.AckRange{
				Smallest: int64(binary.BigEndian.Uint64(data[off:])),
				Largest:  int64(binary.BigEndian.Uint64(data[off+8:])),
			})
			off += rangeLen
		}
		return pkt, nil
	}
	pkt.Seq = int64(binary.BigEndian.Uint64(data[4:]))
	return pkt, nil
}
