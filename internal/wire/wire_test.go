package wire

import (
	"testing"
	"testing/quick"

	"repro/internal/netem"
	"repro/internal/sim"
)

func TestDataRoundTrip(t *testing.T) {
	pkt := &netem.Packet{Flow: 3, Seq: 123456789, Size: 1200}
	buf := make([]byte, 1500)
	n, err := Encode(buf, pkt)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1200 {
		t.Fatalf("encoded %d bytes, want padded 1200", n)
	}
	got, err := Decode(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if got.Flow != 3 || got.Seq != 123456789 || got.Size != 1200 || got.IsAck {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestAckRoundTrip(t *testing.T) {
	pkt := &netem.Packet{
		Flow:         1,
		IsAck:        true,
		Size:         40,
		LargestAcked: 999,
		AckDelay:     25 * sim.Millisecond,
		Ranges: []netem.AckRange{
			{Smallest: 990, Largest: 999},
			{Smallest: 100, Largest: 980},
		},
	}
	buf := make([]byte, 1500)
	n, err := Encode(buf, pkt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsAck || got.LargestAcked != 999 || got.AckDelay != 25*sim.Millisecond {
		t.Fatalf("ack fields = %+v", got)
	}
	if len(got.Ranges) != 2 || got.Ranges[0] != pkt.Ranges[0] || got.Ranges[1] != pkt.Ranges[1] {
		t.Fatalf("ranges = %v", got.Ranges)
	}
}

func TestRangesCapped(t *testing.T) {
	pkt := &netem.Packet{IsAck: true}
	for i := 0; i < MaxRanges+10; i++ {
		pkt.Ranges = append(pkt.Ranges, netem.AckRange{Smallest: int64(i * 10), Largest: int64(i*10 + 5)})
	}
	buf := make([]byte, 4096)
	n, err := Encode(buf, pkt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Ranges) != MaxRanges {
		t.Fatalf("ranges = %d, want capped at %d", len(got.Ranges), MaxRanges)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}); err != ErrShort {
		t.Fatalf("short: %v", err)
	}
	bad := make([]byte, headerLen)
	bad[0] = 0xFF
	if _, err := Decode(bad); err != ErrMagic {
		t.Fatalf("magic: %v", err)
	}
	// ACK claiming more ranges than present.
	trunc := make([]byte, headerLen)
	trunc[0] = magic
	trunc[1] = flagAck
	trunc[3] = 5
	if _, err := Decode(trunc); err != ErrShort {
		t.Fatalf("truncated ranges: %v", err)
	}
}

func TestEncodeBufferTooSmall(t *testing.T) {
	pkt := &netem.Packet{Seq: 1, Size: 1200}
	if _, err := Encode(make([]byte, 100), pkt); err == nil {
		t.Fatal("small buffer accepted")
	}
}

func TestPropRoundTrip(t *testing.T) {
	f := func(flow uint8, seq int64, ack bool, largest int64, nr uint8) bool {
		pkt := &netem.Packet{Flow: int(flow), Size: 600}
		if seq < 0 {
			seq = -seq
		}
		if largest < 0 {
			largest = -largest
		}
		if ack {
			pkt.IsAck = true
			pkt.LargestAcked = largest
			for i := 0; i < int(nr%8); i++ {
				pkt.Ranges = append(pkt.Ranges, netem.AckRange{Smallest: int64(i), Largest: int64(i + 1)})
			}
		} else {
			pkt.Seq = seq
		}
		buf := make([]byte, 2048)
		n, err := Encode(buf, pkt)
		if err != nil {
			return false
		}
		got, err := Decode(buf[:n])
		if err != nil {
			return false
		}
		if got.Flow != pkt.Flow || got.IsAck != pkt.IsAck {
			return false
		}
		if pkt.IsAck {
			return got.LargestAcked == pkt.LargestAcked && len(got.Ranges) == len(pkt.Ranges)
		}
		return got.Seq == pkt.Seq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
