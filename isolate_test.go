package quicbench

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/isolate"
	"repro/internal/runner"
)

// TestMain doubles as the isolated trial child: `RunSweep` with Isolate
// re-execs this test binary (argv `_trial`, ChildEnvMarker set), and this
// hook routes the child into the real TrialChildMain — the same code path
// the production `quicbench _trial` mode runs.
func TestMain(m *testing.M) {
	if os.Getenv(isolate.ChildEnvMarker) == "1" {
		os.Exit(TrialChildMain())
	}
	os.Exit(m.Run())
}

// isolatedTestOpts tunes sweepTestOpts for subprocess execution: tight
// supervision intervals so failure tests stay fast.
func isolatedTestOpts() SweepOptions {
	opts := sweepTestOpts()
	opts.Isolate = true
	opts.IsolateStallTimeout = 2 * time.Second
	return opts
}

// journalRecords reads a checkpoint journal into its per-key records.
func journalRecords(t *testing.T, path string) map[string]runner.Record {
	t.Helper()
	done, err := runner.ReadJournal(path)
	if err != nil {
		t.Fatalf("ReadJournal(%s): %v", path, err)
	}
	return done
}

// TestIsolatedSweepBitIdentical: the same seeded sweep run in-process and
// under subprocess isolation must journal byte-identical results — crash
// isolation is an execution detail, never a measurement change.
func TestIsolatedSweepBitIdentical(t *testing.T) {
	dir := t.TempDir()
	inprocJ := filepath.Join(dir, "inproc.jsonl")
	isoJ := filepath.Join(dir, "iso.jsonl")

	opts := sweepTestOpts()
	opts.Checkpoint = inprocJ
	if _, err := RunSweep(context.Background(), opts); err != nil {
		t.Fatalf("in-process sweep: %v", err)
	}

	iopts := isolatedTestOpts()
	iopts.Checkpoint = isoJ
	iopts.OnFallback = func(cell string, err error) {
		t.Errorf("cell %s silently degraded to in-process: %v", cell, err)
	}
	sum, err := RunSweep(context.Background(), iopts)
	if err != nil {
		t.Fatalf("isolated sweep: %v", err)
	}
	for _, c := range sum.Cells {
		if !c.Completed() {
			t.Fatalf("isolated cell %s: outcome %s (%s)", c.Cell, c.Outcome, c.Err)
		}
	}

	inproc, iso := journalRecords(t, inprocJ), journalRecords(t, isoJ)
	if len(inproc) == 0 || len(inproc) != len(iso) {
		t.Fatalf("journal sizes differ: in-process %d, isolated %d", len(inproc), len(iso))
	}
	for key, want := range inproc {
		got, ok := iso[key]
		if !ok {
			t.Errorf("cell %s missing from the isolated journal", key)
			continue
		}
		if !bytes.Equal(want.Result, got.Result) || want.Hash != got.Hash {
			t.Errorf("cell %s not bit-identical:\nin-process %s (%s)\nisolated   %s (%s)",
				key, want.Result, want.Hash, got.Result, got.Hash)
		}
	}
}

// TestIsolatedSweepWedgeClassified is the reaper end-to-end: one cell's
// child wedges via the QUICBENCH_TEST_WEDGE hook, is SIGKILLed, classified
// as a timeout, retried to its budget, and the sweep still completes with
// the wedged cell annotated failed and its neighbour healthy.
func TestIsolatedSweepWedgeClassified(t *testing.T) {
	t.Setenv(isolate.EnvWedge, "lsquic")
	opts := isolatedTestOpts()
	opts.Retries = 2
	opts.IsolateStallTimeout = 500 * time.Millisecond

	sum, err := RunSweep(context.Background(), opts)
	if err != nil {
		t.Fatalf("sweep did not survive the wedge: %v", err)
	}
	var sawWedged, sawHealthy bool
	for _, c := range sum.Cells {
		switch {
		case strings.HasPrefix(c.Cell, "lsquic/"):
			sawWedged = true
			if c.Outcome != string(runner.OutcomeFailed) {
				t.Errorf("wedged cell %s outcome = %s, want failed", c.Cell, c.Outcome)
			}
			if c.Attempts != 2 {
				t.Errorf("wedged cell attempts = %d, want the full budget of 2", c.Attempts)
			}
			if !strings.Contains(c.Err, "timeout") || !strings.Contains(c.Err, "heartbeat") {
				t.Errorf("wedged cell err %q does not describe a heartbeat timeout", c.Err)
			}
		default:
			sawHealthy = true
			if !c.Completed() {
				t.Errorf("healthy cell %s outcome = %s (%s)", c.Cell, c.Outcome, c.Err)
			}
		}
	}
	if !sawWedged || !sawHealthy {
		t.Fatalf("grid missing wedged or healthy cells: %+v", sum.Cells)
	}
}

// TestIsolatedSweepPanicClassified: a panic inside an isolated child is
// recovered by the child, reported over the pipe, and journaled exactly
// like an in-process panic.
func TestIsolatedSweepPanicClassified(t *testing.T) {
	t.Setenv(isolate.EnvPanic, "lsquic")
	opts := isolatedTestOpts()
	opts.Retries = 2

	sum, err := RunSweep(context.Background(), opts)
	if err != nil {
		t.Fatalf("sweep did not survive the panic: %v", err)
	}
	for _, c := range sum.Cells {
		if strings.HasPrefix(c.Cell, "lsquic/") {
			if c.Outcome != string(runner.OutcomeFailed) || !strings.Contains(c.Err, "panic") {
				t.Errorf("panicking cell %s: outcome %s err %q, want failed/panic", c.Cell, c.Outcome, c.Err)
			}
		} else if !c.Completed() {
			t.Errorf("healthy cell %s outcome = %s (%s)", c.Cell, c.Outcome, c.Err)
		}
	}
}

// TestIsolatedSweepResume: an isolated sweep interrupted mid-way (the
// checkpointed-journal equivalent of the parent being SIGKILLed: only
// journaled cells survive, in-flight ones do not) resumes to results
// bit-identical to an uninterrupted isolated run.
func TestIsolatedSweepResume(t *testing.T) {
	dir := t.TempDir()
	fullJ := filepath.Join(dir, "full.jsonl")
	partJ := filepath.Join(dir, "part.jsonl")

	full := isolatedTestOpts()
	full.Checkpoint = fullJ
	if _, err := RunSweep(context.Background(), full); err != nil {
		t.Fatalf("uninterrupted sweep: %v", err)
	}

	// Interrupt after the first completed cell.
	ctx, cancel := context.WithCancel(context.Background())
	part := isolatedTestOpts()
	part.Checkpoint = partJ
	part.Progress = func(SweepCellResult) { cancel() }
	sum, err := RunSweep(ctx, part)
	if err != nil {
		t.Fatalf("interrupted sweep: %v", err)
	}
	if !sum.Interrupted {
		t.Fatal("sweep did not observe the interruption")
	}

	// Resume from the journal and compare against the uninterrupted run.
	resume := isolatedTestOpts()
	resume.Checkpoint = partJ
	resume.Resume = true
	sum2, err := RunSweep(context.Background(), resume)
	if err != nil {
		t.Fatalf("resumed sweep: %v", err)
	}
	if sum2.Reused == 0 {
		t.Error("resume re-executed every cell; the journal was ignored")
	}
	want, got := journalRecords(t, fullJ), journalRecords(t, partJ)
	if len(want) != len(got) {
		t.Fatalf("resumed journal has %d cells, want %d", len(got), len(want))
	}
	for key, w := range want {
		g := got[key]
		if !bytes.Equal(w.Result, g.Result) || w.Hash != g.Hash {
			t.Errorf("cell %s: resumed result not bit-identical to uninterrupted run", key)
		}
	}
}
