package quicbench

import (
	"repro/internal/report"
)

// knownStack is one row of the paper's Table 2: the IETF QUIC stack
// landscape at the time of the study, with the selection criteria that
// decided which stacks were evaluated.
type knownStack struct {
	Organization string
	Name         string
	OpenSource   bool
	ImplementsCC bool
	StableVer    bool
	Deployed     bool
	Evaluated    bool
}

// knownStacks mirrors Table 2.
var knownStacks = []knownStack{
	{"Facebook", "mvfst", true, true, true, true, true},
	{"Google", "chromium", true, true, true, true, true},
	{"Microsoft", "msquic", true, true, true, true, true},
	{"Cloudflare", "quiche", true, true, true, true, true},
	{"LiteSpeed", "lsquic", true, true, true, true, true},
	{"Go", "quicgo", true, true, true, true, true},
	{"H2O", "quicly", true, true, true, true, true},
	{"Rust", "quinn", true, true, true, true, true},
	{"Amazon Web Services", "s2n-quic", true, true, true, true, true},
	{"Alibaba", "xquic", true, true, true, true, true},
	{"Mozilla", "neqo", true, true, true, true, true},
	{"Akamai", "akamaiquic", false, false, false, false, false},
	{"Apple", "applequic", false, false, false, false, false},
	{"Apache", "ats", true, true, true, false, false},
	{"F5", "f5", true, false, false, false, false},
	{"Haskell", "haskellquic", true, false, false, false, false},
	{"Java", "kwik", true, false, false, false, false},
	{"nghttp", "ngtcp2", true, false, false, false, false},
	{"nginx", "nginx", true, false, false, false, false},
	{"Pico", "picoquic", true, true, false, false, false},
	{"Python", "aioquic", true, false, true, true, false},
	{"Quant", "quant", true, true, false, false, false},
}

// runTab2 prints the stack landscape.
func runTab2(cfg ExpConfig) error {
	cfg = cfg.withDefaults()
	tbl := &report.Table{Header: []string{"Organization", "Stack", "OpenSource", "ImplementsCCA", "StableVer", "Deployed", "Evaluated"}}
	yn := func(b bool) string {
		if b {
			return "yes"
		}
		return "-"
	}
	for _, s := range knownStacks {
		tbl.AddRow(s.Organization, s.Name, yn(s.OpenSource), yn(s.ImplementsCC),
			yn(s.StableVer), yn(s.Deployed), yn(s.Evaluated))
	}
	return tbl.Render(cfg.Out)
}
