package quicbench

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/live"
	"repro/internal/report"
	"repro/internal/stacks"
)

// LiveOptions configures a sim-vs-live divergence run: the same cells
// measured by the discrete-event simulator and by the real-UDP loopback
// backend under identical seeds, with the per-cell Δs reported against a
// conformance budget.
type LiveOptions struct {
	// Stacks names the stacks under test (default: quicgo).
	Stacks []string
	// CCAs selects the algorithms (default: CUBIC). Pairs a stack does
	// not implement are skipped.
	CCAs []CCA
	// Networks lists the network configurations (default: the paper's
	// representative setting with a short 2 s duration — live trials run
	// in wall-clock time, so Duration is real seconds here).
	Networks []Network
	// LossP, when positive, applies i.i.d. loss at that probability to
	// both backends' data paths (same seeded model).
	LossP float64
	// Burst replaces i.i.d. loss with the Gilbert-Elliott burst channel
	// (~1% mean loss in ~25-packet bursts) on both backends.
	Burst bool
	// BudgetPP is the divergence budget: the mean |Δconformance| across
	// cells, in percentage points, above which the run is declared over
	// budget (default 25 — the backends share seeds but not packet-level
	// schedules, so loopback runs diverge by nature).
	BudgetPP float64
	// StallTimeout, WallGrace, SkewBudget tune the live watchdog (zero
	// selects the live package defaults).
	StallTimeout time.Duration
	WallGrace    time.Duration
	SkewBudget   time.Duration
	// Logf, when non-nil, observes live degradation warnings (clock skew,
	// Now regressions) as they happen. Must be concurrency-safe.
	Logf func(format string, args ...any)
}

// LiveMeasure is one backend's view of a cell in a divergence run.
type LiveMeasure struct {
	Conformance    float64
	ConformanceT   float64
	ThroughputMbps float64
	LossPkts       float64
	// Err is the typed failure text when this backend could not measure
	// the cell.
	Err string
}

// LiveCellResult pairs both backends' measures of one cell.
type LiveCellResult struct {
	Cell string
	Sim  LiveMeasure
	Live LiveMeasure
}

// LiveSummary is a divergence run's full result.
type LiveSummary struct {
	Cells []LiveCellResult
	// BudgetPP echoes the configured divergence budget.
	BudgetPP float64
}

// rows lowers the summary to the report layer's shape. Conformance is
// fractional ([0,1]) everywhere inside the pipeline; the report layer and
// the budget speak percentage points, so it scales by 100 here.
func (s *LiveSummary) rows() []report.DivergenceRow {
	out := make([]report.DivergenceRow, len(s.Cells))
	for i, c := range s.Cells {
		out[i] = report.DivergenceRow{
			Cell:    c.Cell,
			SimConf: c.Sim.Conformance * 100, LiveConf: c.Live.Conformance * 100,
			SimTput: c.Sim.ThroughputMbps, LiveTput: c.Live.ThroughputMbps,
			SimLoss: c.Sim.LossPkts, LiveLoss: c.Live.LossPkts,
			SimErr: c.Sim.Err, LiveErr: c.Live.Err,
		}
	}
	return out
}

// Within reports whether the run fits its divergence budget: every cell
// measured by both backends, mean |Δconformance| at or under BudgetPP.
func (s *LiveSummary) Within() bool {
	return report.Summarize(s.rows(), s.BudgetPP).Within()
}

// liveLoss builds the shared loss-model constructor for both backends.
func liveLoss(opts LiveOptions) func() (faults.LossModel, error) {
	switch {
	case opts.Burst:
		return func() (faults.LossModel, error) {
			return faults.NewGilbertElliott(0.0008, 0.04, 0, 0.5)
		}
	case opts.LossP > 0:
		p := opts.LossP
		return func() (faults.LossModel, error) { return faults.IIDLoss{P: p}, nil }
	}
	return nil
}

// RunLiveDivergence measures every cell of the requested grid through both
// backends — the simulator and the real-UDP loopback path — under
// identical seed mixing, and returns the paired results. Cells a backend
// cannot measure (e.g. sockets refused in a sandbox) carry a typed error
// in that backend's measure instead of failing the run: "the live backend
// cannot run here" is itself a finding the report shows.
func RunLiveDivergence(ctx context.Context, opts LiveOptions) (*LiveSummary, error) {
	names := opts.Stacks
	if len(names) == 0 {
		names = []string{"quicgo"}
	}
	ccas := opts.CCAs
	if len(ccas) == 0 {
		ccas = []CCA{CUBIC}
	}
	sccas := make([]stacks.CCA, len(ccas))
	for i, c := range ccas {
		sccas[i] = stacks.CCA(c)
	}
	nets := opts.Networks
	if len(nets) == 0 {
		nets = []Network{{Duration: 2 * time.Second, Trials: 2}}
	}
	cnets := make([]core.Network, len(nets))
	for i, n := range nets {
		cnets[i] = n.toCore()
	}
	cells, err := core.GridCells(names, sccas, cnets)
	if err != nil {
		return nil, err
	}
	if opts.BudgetPP <= 0 {
		opts.BudgetPP = 25
	}

	dcfg := live.DivergenceConfig{
		Stall:      opts.StallTimeout,
		WallGrace:  opts.WallGrace,
		SkewBudget: opts.SkewBudget,
		Loss:       liveLoss(opts),
		OnWarn: func(key string, w live.Warning) {
			if opts.Logf != nil {
				opts.Logf("%s: %s", key, w)
			}
		},
	}
	sum := &LiveSummary{BudgetPP: opts.BudgetPP}
	for _, c := range cells {
		if ctx.Err() != nil {
			return sum, fmt.Errorf("quicbench: live divergence interrupted: %w", ctx.Err())
		}
		dc := live.MeasureCell(ctx, dcfg, c)
		sum.Cells = append(sum.Cells, LiveCellResult{
			Cell: c.Key(),
			Sim: LiveMeasure{
				Conformance: dc.Sim.Conf, ConformanceT: dc.Sim.ConfT,
				ThroughputMbps: dc.Sim.TputMbps, LossPkts: dc.Sim.LossPkts, Err: dc.Sim.Err,
			},
			Live: LiveMeasure{
				Conformance: dc.Live.Conf, ConformanceT: dc.Live.ConfT,
				ThroughputMbps: dc.Live.TputMbps, LossPkts: dc.Live.LossPkts, Err: dc.Live.Err,
			},
		})
	}
	return sum, nil
}

// RenderLiveDivergence writes the per-cell Δ-table and the budget verdict
// line, returning whether the run fit its budget.
func RenderLiveDivergence(w io.Writer, s *LiveSummary) (bool, error) {
	sm, err := report.RenderDivergence(w, s.rows(), s.BudgetPP)
	if err != nil {
		return false, err
	}
	return sm.Within(), nil
}
