package quicbench

import (
	"bytes"
	"context"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// manyflowTestSpec is a scaled-down two-cohort population (one test, one
// reference) that keeps facade-level many-flow tests under a second per
// sweep while still exercising churn: Poisson arrivals on top of an
// initial batch, bounded-Pareto sizes.
const manyflowTestSpec = `{
  "cohorts": [
    {"name": "web", "fraction": 0.8, "stack": "quicgo", "cca": "cubic",
     "size_alpha": 1.2, "min_bytes": 20000, "max_bytes": 1000000},
    {"name": "ref", "fraction": 0.2, "stack": "kernel", "cca": "cubic",
     "size_alpha": 1.2, "min_bytes": 20000, "max_bytes": 1000000, "reference": true}
  ],
  "arrival_per_sec": 100,
  "max_concurrent": 100,
  "initial_flows": 60
}`

// manyflowTestOpts mirrors sweepTestOpts for the many-flow axis: one
// traffic cell on one small network.
func manyflowTestOpts() SweepOptions {
	return SweepOptions{
		TrafficSpec: []byte(manyflowTestSpec),
		Networks: []Network{{
			BandwidthMbps: 50,
			RTT:           10 * time.Millisecond,
			BufferBDP:     1,
			Duration:      2 * time.Second,
			Trials:        2,
			Seed:          11,
		}},
	}
}

func TestManyFlowSweepFacade(t *testing.T) {
	sum, err := RunSweep(context.Background(), manyflowTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Cells) != 1 {
		t.Fatalf("got %d cells, want 1 (one traffic cell per network)", len(sum.Cells))
	}
	c := sum.Cells[0]
	if !c.Completed() || c.Outcome != "ok" {
		t.Fatalf("cell %s: outcome %s (%s)", c.Cell, c.Outcome, c.Err)
	}
	if !strings.HasPrefix(c.Cell, "manyflow/mix/") || !strings.Contains(c.Cell, "/mf") {
		t.Errorf("cell key %q does not carry the manyflow identity + spec digest", c.Cell)
	}
	mf := c.Report.ManyFlow
	if mf == nil {
		t.Fatal("Report.ManyFlow is nil for a traffic cell")
	}
	if mf.Completed == 0 || mf.Flows < 60 {
		t.Errorf("implausible workload accounting: %+v", mf)
	}
	if len(mf.Cohorts) != 2 {
		t.Fatalf("got %d cohorts, want 2", len(mf.Cohorts))
	}
	if !mf.Cohorts[1].Reference {
		t.Error("reference cohort lost its flag crossing the facade")
	}

	var buf bytes.Buffer
	if err := RenderSweep(&buf, sum); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"cohorts of manyflow/mix/", "web", "ref (ref)"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderSweep output missing %q:\n%s", want, out)
		}
	}
}

// TestManyFlowSweepDeterministic: the same seeded many-flow sweep must
// journal byte-identical records across repeat runs and worker counts.
func TestManyFlowSweepDeterministic(t *testing.T) {
	dir := t.TempDir()
	journals := []string{
		filepath.Join(dir, "a.jsonl"),
		filepath.Join(dir, "b.jsonl"),
		filepath.Join(dir, "w4.jsonl"),
	}
	for i, j := range journals {
		opts := manyflowTestOpts()
		opts.Checkpoint = j
		if i == 2 {
			opts.Workers = 4
		}
		sum, err := RunSweep(context.Background(), opts)
		if err != nil {
			t.Fatalf("sweep %d: %v", i, err)
		}
		for _, c := range sum.Cells {
			if !c.Completed() {
				t.Fatalf("sweep %d cell %s: outcome %s (%s)", i, c.Cell, c.Outcome, c.Err)
			}
		}
	}
	want := journalRecords(t, journals[0])
	if len(want) == 0 {
		t.Fatal("empty baseline journal")
	}
	for _, j := range journals[1:] {
		got := journalRecords(t, j)
		if len(got) != len(want) {
			t.Fatalf("journal %s has %d records, want %d", j, len(got), len(want))
		}
		for key, w := range want {
			g := got[key]
			if !bytes.Equal(w.Result, g.Result) || w.Hash != g.Hash {
				t.Errorf("cell %s not bit-identical in %s:\nwant %s (%s)\ngot  %s (%s)",
					key, j, w.Result, w.Hash, g.Result, g.Hash)
			}
		}
	}
}

// TestManyFlowIsolatedBitIdentical: a many-flow cell run in a crash-isolated
// child process must journal the same bytes — and write the same qlog trace
// files — as the in-process executor.
func TestManyFlowIsolatedBitIdentical(t *testing.T) {
	dir := t.TempDir()
	inprocJ := filepath.Join(dir, "inproc.jsonl")
	isoJ := filepath.Join(dir, "iso.jsonl")
	inprocT := filepath.Join(dir, "inproc-traces")
	isoT := filepath.Join(dir, "iso-traces")

	opts := manyflowTestOpts()
	opts.Checkpoint = inprocJ
	opts.TraceDir = inprocT
	if _, err := RunSweep(context.Background(), opts); err != nil {
		t.Fatalf("in-process sweep: %v", err)
	}

	iopts := manyflowTestOpts()
	iopts.Checkpoint = isoJ
	iopts.TraceDir = isoT
	iopts.Isolate = true
	iopts.IsolateStallTimeout = 10 * time.Second
	iopts.OnFallback = func(cell string, err error) {
		t.Errorf("cell %s silently degraded to in-process: %v", cell, err)
	}
	sum, err := RunSweep(context.Background(), iopts)
	if err != nil {
		t.Fatalf("isolated sweep: %v", err)
	}
	for _, c := range sum.Cells {
		if !c.Completed() {
			t.Fatalf("isolated cell %s: outcome %s (%s)", c.Cell, c.Outcome, c.Err)
		}
	}

	inproc, iso := journalRecords(t, inprocJ), journalRecords(t, isoJ)
	if len(inproc) == 0 || len(inproc) != len(iso) {
		t.Fatalf("journal sizes differ: in-process %d, isolated %d", len(inproc), len(iso))
	}
	for key, want := range inproc {
		got, ok := iso[key]
		if !ok {
			t.Errorf("cell %s missing from the isolated journal", key)
			continue
		}
		if !bytes.Equal(want.Result, got.Result) || want.Hash != got.Hash {
			t.Errorf("cell %s not bit-identical:\nin-process %s (%s)\nisolated   %s (%s)",
				key, want.Result, want.Hash, got.Result, got.Hash)
		}
	}

	if diff := compareTrees(t, inprocT, isoT); diff != "" {
		t.Errorf("qlog traces differ between executors: %s", diff)
	}
}

// compareTrees walks two directory trees and reports the first difference
// in relative file sets or file bytes ("" when identical).
func compareTrees(t *testing.T, a, b string) string {
	t.Helper()
	read := func(root string) map[string][]byte {
		out := map[string][]byte{}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return err
			}
			rel, rerr := filepath.Rel(root, path)
			if rerr != nil {
				return rerr
			}
			data, rerr := os.ReadFile(path)
			if rerr != nil {
				return rerr
			}
			out[rel] = data
			return nil
		})
		if err != nil {
			t.Fatalf("walking %s: %v", root, err)
		}
		return out
	}
	am, bm := read(a), read(b)
	if len(am) == 0 {
		return "no trace files written"
	}
	if len(am) != len(bm) {
		return "different file counts"
	}
	for rel, data := range am {
		other, ok := bm[rel]
		if !ok {
			return "missing file " + rel
		}
		if !bytes.Equal(data, other) {
			return "bytes differ in " + rel
		}
	}
	return ""
}
