package quicbench

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/pe"
	"repro/internal/sim"
	"repro/internal/stacks"
)

// CCA identifies a congestion control algorithm.
type CCA string

// The three algorithms the paper studies.
const (
	CUBIC CCA = "cubic"
	BBR   CCA = "bbr"
	Reno  CCA = "reno"
)

// AllCCAs lists the algorithms in the paper's order.
var AllCCAs = []CCA{CUBIC, BBR, Reno}

// Network configures one experiment network, mirroring the §4 grid. The
// zero value selects the paper's representative configuration: 20 Mbps,
// 10 ms RTT, 1 BDP droptail buffer, 120 s flows, 5 trials.
type Network struct {
	BandwidthMbps float64       // bottleneck capacity (default 20)
	RTT           time.Duration // base round-trip time (default 10 ms)
	BufferBDP     float64       // droptail buffer in BDP multiples (default 1)
	Duration      time.Duration // flow runtime (default 120 s)
	Trials        int           // repetitions (default 5)
	Seed          uint64        // randomness seed (default 0)
	Wild          bool          // §4.2 Internet-path emulation
}

// toCore converts to the internal representation.
func (n Network) toCore() core.Network {
	return core.Network{
		BandwidthMbps: n.BandwidthMbps,
		RTT:           sim.Duration(n.RTT),
		BufferBDP:     n.BufferBDP,
		Duration:      sim.Duration(n.Duration),
		Trials:        n.Trials,
		Seed:          n.Seed,
		Wild:          n.Wild,
	}
}

// Report carries the full §3 metric set for one implementation.
type Report struct {
	// Conformance is the enhanced (clustered) metric of §3.2.
	Conformance float64
	// ConformanceOld uses the single-hull definition from the authors'
	// earlier work (the paper's "Conf-old" columns).
	ConformanceOld float64
	// ConformanceT is the maximum conformance over translations (§3.3).
	ConformanceT float64
	// DeltaThroughputMbps / DeltaDelayMs are the §3.3 tuning hints:
	// how the test implementation sits relative to the reference.
	DeltaThroughputMbps float64
	DeltaDelayMs        float64
	// K is the natural cluster count chosen for the test envelope.
	K int
	// ManyFlow carries the per-cohort breakdown when the cell ran the
	// many-flow traffic engine (SweepOptions.TrafficSpec); nil for classic
	// two-flow cells. The top-level metrics then describe the aggregate
	// non-reference population against the reference cohort's envelope.
	ManyFlow *ManyFlowReport
}

// CohortReport is one cohort's slice of a many-flow report: PE metrics
// against the reference cohort plus workload accounting. Reference cohorts
// carry accounting only.
type CohortReport struct {
	Name                string
	Reference           bool
	Conformance         float64
	ConformanceT        float64
	DeltaThroughputMbps float64
	DeltaDelayMs        float64
	K                   int
	Flows               int64
	Completed           int64
	MeanFCTms           float64
	MeanMbps            float64
	// Jain is Jain's fairness index over the cohort's window throughput
	// samples pooled across trials (1 = perfectly even sharing).
	Jain float64
}

// ManyFlowReport aggregates a many-flow cell: flow-population accounting
// across trials plus the per-cohort breakdown.
type ManyFlowReport struct {
	Flows      int64
	Completed  int64
	Rejected   int64
	PeakActive int
	AggMbps    float64
	Cohorts    []CohortReport
}

func fromManyFlowReport(mf *core.ManyFlowReport) *ManyFlowReport {
	if mf == nil {
		return nil
	}
	out := &ManyFlowReport{
		Flows:      mf.Flows,
		Completed:  mf.Completed,
		Rejected:   mf.Rejected,
		PeakActive: mf.PeakActive,
		AggMbps:    mf.AggMbps,
	}
	for _, c := range mf.Cohorts {
		out.Cohorts = append(out.Cohorts, CohortReport{
			Name:                c.Name,
			Reference:           c.Reference,
			Conformance:         c.Conformance,
			ConformanceT:        c.ConformanceT,
			DeltaThroughputMbps: c.DeltaThroughputMbps,
			DeltaDelayMs:        c.DeltaDelayMs,
			K:                   c.K,
			Flows:               c.Flows,
			Completed:           c.Completed,
			MeanFCTms:           c.MeanFCTms,
			MeanMbps:            c.MeanMbps,
			Jain:                c.Jain,
		})
	}
	return out
}

// DefaultTrafficSpec returns the canonical many-flow traffic model as JSON
// (90% short web flows + 5% bulk on quic-go CUBIC, 5% kernel-reference
// bulk; Poisson arrivals at 500 flows/s into a 1000-flow cap), ready for
// SweepOptions.TrafficSpec or as a template for a custom spec file.
func DefaultTrafficSpec() []byte {
	js, err := json.MarshalIndent(core.DefaultTrafficSpec(), "", "  ")
	if err != nil {
		panic(err) // a compile-time-constant spec cannot fail to marshal
	}
	return append(js, '\n')
}

func fromPEReport(r pe.Report) Report {
	return Report{
		Conformance:         r.Conformance,
		ConformanceOld:      r.ConformanceOld,
		ConformanceT:        r.ConformanceT,
		DeltaThroughputMbps: r.DeltaThroughputMbps,
		DeltaDelayMs:        r.DeltaDelayMs,
		K:                   r.K,
	}
}

// Impl identifies one (stack, CCA) implementation.
type Impl struct {
	Stack string
	CCA   CCA
}

// String implements fmt.Stringer.
func (im Impl) String() string { return im.Stack + " " + string(im.CCA) }

// Stacks returns the names of all modelled stacks, the kernel reference
// first, in the paper's Table 1 order.
func Stacks() []string {
	var out []string
	for _, s := range stacks.All() {
		out = append(out, s.Name)
	}
	return out
}

// Implementations returns the 22 QUIC (stack, CCA) pairs of Table 1.
func Implementations() []Impl {
	var out []Impl
	for _, im := range stacks.AllImplementations() {
		out = append(out, Impl{Stack: im.Stack, CCA: CCA(im.CCA)})
	}
	return out
}

// ImplementationsOf returns the QUIC stacks shipping the given CCA.
func ImplementationsOf(cca CCA) []Impl {
	var out []Impl
	for _, im := range stacks.Implementations(stacks.CCA(cca)) {
		out = append(out, Impl{Stack: im.Stack, CCA: CCA(im.CCA)})
	}
	return out
}

// flow resolves a public (stack, cca) pair, validating both.
func flow(stack string, cca CCA) (core.Flow, error) {
	s := stacks.Get(stack)
	if s == nil {
		return core.Flow{}, fmt.Errorf("quicbench: unknown stack %q", stack)
	}
	if !s.Has(stacks.CCA(cca)) {
		return core.Flow{}, fmt.Errorf("quicbench: stack %q does not implement %s", stack, cca)
	}
	return core.Flow{Stack: s, CCA: stacks.CCA(cca)}, nil
}

// MeasureConformance runs the paper's conformance pipeline for one
// implementation: the implementation competes against the kernel reference
// of the same CCA, the reference self-competes, Performance Envelopes are
// built per §3.2, and the metrics of §3.1/§3.3 are computed.
func MeasureConformance(stack string, cca CCA, net Network) (Report, error) {
	f, err := flow(stack, cca)
	if err != nil {
		return Report{}, err
	}
	return fromPEReport(core.Conformance(f, net.toCore())), nil
}

// Share reports a pairwise bandwidth-share experiment (§4.3).
type Share struct {
	A, B Impl
	// ShareA is throughput_A / (throughput_A + throughput_B); above 0.5
	// means A takes more than its fair share.
	ShareA float64
	// MeanMbps are the per-flow mean throughputs.
	MeanMbps [2]float64
}

// MeasureFairness runs the §4.3 bandwidth-share experiment between two
// implementations.
func MeasureFairness(a, b Impl, net Network) (Share, error) {
	fa, err := flow(a.Stack, a.CCA)
	if err != nil {
		return Share{}, err
	}
	fb, err := flow(b.Stack, b.CCA)
	if err != nil {
		return Share{}, err
	}
	res := core.BandwidthShare(fa, fb, net.toCore())
	return Share{A: a, B: b, ShareA: res.ShareA, MeanMbps: res.MeanMbps}, nil
}

// Point is a (delay, throughput) sample on the PE plane.
type Point struct {
	DelayMs float64
	Mbps    float64
}

// Envelope is a Performance Envelope exposed for plotting: the convex
// hulls plus the samples that produced them.
type Envelope struct {
	// Hulls are the PE polygons (vertex lists).
	Hulls [][]Point
	// Points is the pooled sample cloud across trials.
	Points []Point
	// K is the chosen cluster count.
	K int
}

func fromPE(e *pe.Envelope) Envelope {
	out := Envelope{K: e.K}
	for _, h := range e.Hulls {
		hull := make([]Point, len(h))
		for i, v := range h {
			hull[i] = Point{DelayMs: v.X, Mbps: v.Y}
		}
		out.Hulls = append(out.Hulls, hull)
	}
	for _, p := range e.AllPoints() {
		out.Points = append(out.Points, Point{DelayMs: p.X, Mbps: p.Y})
	}
	return out
}

// BuildEnvelopes runs the conformance experiment and returns both PEs
// (test and reference) for visualization, as in the paper's PE figures.
func BuildEnvelopes(stack string, cca CCA, net Network) (test, ref Envelope, err error) {
	f, err := flow(stack, cca)
	if err != nil {
		return Envelope{}, Envelope{}, err
	}
	te, re := core.Envelopes(f, net.toCore())
	return fromPE(te), fromPE(re), nil
}

// Fixed reports whether the paper proposes a §5 fix for the given
// implementation, and if so, measures the fixed variant's conformance.
func Fixed(stack string, cca CCA, net Network) (Report, bool, error) {
	fixedStack, ok := stacks.Fixed(stack, stacks.CCA(cca))
	if !ok {
		return Report{}, false, nil
	}
	f := core.Flow{Stack: fixedStack, CCA: stacks.CCA(cca)}
	return fromPEReport(core.Conformance(f, net.toCore())), true, nil
}

// DeviationNote returns the modelled deviation documentation for an
// implementation ("" when it is standard).
func DeviationNote(stack string, cca CCA) string {
	s := stacks.Get(stack)
	if s == nil {
		return ""
	}
	return s.Notes[stacks.CCA(cca)]
}
