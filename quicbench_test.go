package quicbench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// testNet is a light configuration for API tests.
func testNet() Network {
	return Network{
		BandwidthMbps: 20,
		RTT:           10 * time.Millisecond,
		BufferBDP:     1,
		Duration:      15 * time.Second,
		Trials:        2,
		Seed:          3,
	}
}

func TestStacksList(t *testing.T) {
	names := Stacks()
	if len(names) != 12 {
		t.Fatalf("stacks = %d, want 12", len(names))
	}
	if names[0] != "kernel" {
		t.Fatalf("first stack = %s, want kernel", names[0])
	}
}

func TestImplementationsCount(t *testing.T) {
	if got := len(Implementations()); got != 22 {
		t.Fatalf("implementations = %d, want 22", got)
	}
	if got := len(ImplementationsOf(CUBIC)); got != 11 {
		t.Fatalf("CUBIC implementations = %d, want 11", got)
	}
}

func TestImplString(t *testing.T) {
	im := Impl{Stack: "quiche", CCA: CUBIC}
	if im.String() != "quiche cubic" {
		t.Fatalf("String = %q", im.String())
	}
}

func TestMeasureConformanceValidation(t *testing.T) {
	if _, err := MeasureConformance("nosuch", CUBIC, testNet()); err == nil {
		t.Fatal("unknown stack accepted")
	}
	if _, err := MeasureConformance("msquic", BBR, testNet()); err == nil {
		t.Fatal("msquic BBR should be rejected (Table 1)")
	}
}

func TestMeasureConformanceRuns(t *testing.T) {
	rep, err := MeasureConformance("quicgo", CUBIC, testNet())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Conformance < 0 || rep.Conformance > 1 {
		t.Fatalf("conformance out of range: %v", rep.Conformance)
	}
	if rep.ConformanceT < rep.Conformance {
		t.Fatalf("ConfT %v < Conf %v", rep.ConformanceT, rep.Conformance)
	}
	if rep.K < 1 {
		t.Fatalf("K = %d", rep.K)
	}
}

func TestMeasureFairnessRuns(t *testing.T) {
	sh, err := MeasureFairness(
		Impl{Stack: "quicgo", CCA: CUBIC},
		Impl{Stack: "kernel", CCA: CUBIC},
		testNet())
	if err != nil {
		t.Fatal(err)
	}
	if sh.ShareA <= 0 || sh.ShareA >= 1 {
		t.Fatalf("share = %v", sh.ShareA)
	}
	if sh.MeanMbps[0] <= 0 || sh.MeanMbps[1] <= 0 {
		t.Fatalf("throughputs = %v", sh.MeanMbps)
	}
}

func TestBuildEnvelopesRuns(t *testing.T) {
	test, ref, err := BuildEnvelopes("quicgo", CUBIC, testNet())
	if err != nil {
		t.Fatal(err)
	}
	if len(test.Hulls) == 0 || len(ref.Hulls) == 0 {
		t.Fatal("empty envelopes")
	}
	if len(test.Points) == 0 {
		t.Fatal("no points")
	}
	for _, p := range test.Points {
		if p.Mbps < 0 || p.Mbps > 25 || p.DelayMs < 5 || p.DelayMs > 60 {
			t.Fatalf("implausible sample %+v", p)
		}
	}
}

func TestFixedVariants(t *testing.T) {
	if _, ok, _ := Fixed("xquic", Reno, testNet()); ok {
		t.Fatal("xquic Reno has no fix in the paper")
	}
	rep, ok, err := Fixed("mvfst", BBR, testNet())
	if err != nil || !ok {
		t.Fatalf("mvfst BBR fix missing: %v %v", ok, err)
	}
	if rep.Conformance < 0 || rep.Conformance > 1 {
		t.Fatalf("fixed conformance out of range: %v", rep.Conformance)
	}
}

func TestDeviationNotes(t *testing.T) {
	if DeviationNote("quiche", CUBIC) == "" {
		t.Fatal("quiche CUBIC should document a deviation")
	}
	if DeviationNote("quicgo", CUBIC) != "" {
		t.Fatal("quicgo CUBIC should be standard")
	}
	if DeviationNote("nosuch", CUBIC) != "" {
		t.Fatal("unknown stack should return empty note")
	}
}

func TestMeasureCustomKnobs(t *testing.T) {
	if testing.Short() {
		t.Skip("two full conformance sweeps; skipped with -short")
	}
	net := testNet()
	// A deliberately mis-tuned BBR must score worse than a default one.
	std, err := MeasureCustom("std", BBR, Tunables{}, net)
	if err != nil {
		t.Fatal(err)
	}
	hot, err := MeasureCustom("hot", BBR, Tunables{PacingRateScale: 1.4}, net)
	if err != nil {
		t.Fatal(err)
	}
	if hot.Conformance >= std.Conformance {
		t.Fatalf("mis-tuned BBR (%.2f) not worse than default (%.2f)",
			hot.Conformance, std.Conformance)
	}
	if hot.DeltaThroughputMbps <= std.DeltaThroughputMbps {
		t.Fatalf("overdriven pacing should raise Δ-tput: %v vs %v",
			hot.DeltaThroughputMbps, std.DeltaThroughputMbps)
	}
}

func TestMeasureCustomFairness(t *testing.T) {
	sh, err := MeasureCustomFairness("mycubic", CUBIC, Tunables{EmulatedConnections: 2},
		Impl{Stack: "kernel", CCA: CUBIC}, testNet())
	if err != nil {
		t.Fatal(err)
	}
	if sh.ShareA < 0.5 {
		t.Fatalf("2-connection CUBIC share = %.2f, want aggressive (> 0.5)", sh.ShareA)
	}
}

func TestProfileLookup(t *testing.T) {
	p, ok := Profile("kernel")
	if !ok || p.MSS != 1448 {
		t.Fatalf("kernel profile = %+v ok=%v", p, ok)
	}
	if _, ok := Profile("nosuch"); ok {
		t.Fatal("unknown profile found")
	}
}

func TestExperimentCatalog(t *testing.T) {
	exps := Experiments()
	if len(exps) != 24 {
		t.Fatalf("experiments = %d, want 24 (15 figures + tables 1-4 + 5 extensions)", len(exps))
	}
	if got := len(Extensions()); got != 5 {
		t.Fatalf("extensions = %d, want 5", got)
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("malformed experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	for _, id := range []string{"fig1", "fig6", "fig13", "tab3", "tab4"} {
		if _, ok := LookupExperiment(id); !ok {
			t.Fatalf("missing experiment %s", id)
		}
	}
	if _, ok := LookupExperiment("fig99"); ok {
		t.Fatal("bogus experiment found")
	}
}

func TestRunTab1Experiment(t *testing.T) {
	e, _ := LookupExperiment("tab1")
	var buf bytes.Buffer
	if err := e.Run(ExpConfig{Out: &buf}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"kernel", "quiche", "xquic", "Cloudflare", "RFC 8312bis"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tab1 output missing %q", want)
		}
	}
}

func TestRunFig4Experiment(t *testing.T) {
	e, _ := LookupExperiment("fig4")
	var buf bytes.Buffer
	cfg := ExpConfig{Out: &buf, Scale: Scale{Duration: 15 * time.Second, Trials: 2, Seed: 1}}
	if err := e.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "IOU R(k)") {
		t.Fatalf("fig4 output: %s", buf.String())
	}
	if !strings.Contains(buf.String(), "chosen k") {
		t.Fatal("fig4 missing chosen k")
	}
}

func TestRunFig5SweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	e, _ := LookupExperiment("fig5")
	var buf bytes.Buffer
	cfg := ExpConfig{Out: &buf, Scale: Scale{Duration: 15 * time.Second, Trials: 2, Seed: 1}}
	if err := e.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cwnd_gain") {
		t.Fatal("fig5 missing table")
	}
}

func TestPlotsWritten(t *testing.T) {
	e, _ := LookupExperiment("fig3")
	dir := t.TempDir()
	var buf bytes.Buffer
	cfg := ExpConfig{Out: &buf, PlotDir: dir, Scale: Scale{Duration: 15 * time.Second, Trials: 2, Seed: 1}}
	if err := e.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "plot written") {
		t.Fatal("no plot reported")
	}
}

func TestStaggeredShareAPI(t *testing.T) {
	net := testNet()
	a := Impl{Stack: "kernel", CCA: CUBIC}
	sh, err := StaggeredShare(a, a, net, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if sh.ShareA <= 0 || sh.ShareA >= 1 {
		t.Fatalf("share = %v", sh.ShareA)
	}
	// The early flow should hold at least roughly its fair share against a
	// late identical entrant.
	if sh.ShareA < 0.35 {
		t.Fatalf("early flow share = %.2f, implausibly low", sh.ShareA)
	}
	if _, err := StaggeredShare(Impl{Stack: "nosuch", CCA: CUBIC}, a, net, 0); err == nil {
		t.Fatal("unknown stack accepted")
	}
}

func TestSelectCCAOrdersByFit(t *testing.T) {
	net := testNet()
	net.BufferBDP = 3
	scores, err := SelectCCA([]Impl{
		{Stack: "kernel", CCA: BBR},
		{Stack: "kernel", CCA: CUBIC},
	}, DesiredRegion{MaxDelayMs: 18, MinMbps: 1}, net)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 2 {
		t.Fatalf("scores = %d", len(scores))
	}
	if scores[0].Score < scores[1].Score {
		t.Fatal("scores not sorted descending")
	}
	// In a deep buffer, the low-delay region should favor BBR over the
	// buffer-filling CUBIC.
	if scores[0].Impl.CCA != BBR {
		t.Fatalf("low-delay region picked %s over BBR (scores %v)", scores[0].Impl, scores)
	}
	if _, err := SelectCCA([]Impl{{Stack: "nosuch", CCA: CUBIC}}, DesiredRegion{}, net); err == nil {
		t.Fatal("unknown candidate accepted")
	}
}
