#!/usr/bin/env bash
# dist-smoke: the distributed sweep fabric end to end on loopback, under
# fire. A coordinator shards a seeded campaign across three workers; one
# worker is SIGKILLed mid-campaign (its cells must re-dispatch), then the
# coordinator itself is SIGKILLed mid-journal and restarted with -resume
# (the surviving fleet reconnects). The final journal must be
# byte-identical to an uninterrupted single-process run — distribution,
# worker loss, and coordinator crash are execution details, never a
# measurement change.
set -u

GO=${GO:-go}
BIN=$(mktemp -t quicbench-dist.XXXXXX)
WORK=$(mktemp -d -t quicbench-dist-smoke.XXXXXX)
SWEEP_ARGS=(-stacks quicgo,lsquic,xquic,quicly,quinn,quiche -ccas cubic
  -duration 40s -trials 2 -seed 7)

PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill -9 "$pid" 2>/dev/null; done
  rm -rf "$BIN" "$WORK"
}
trap cleanup EXIT

fail() { echo "dist-smoke: $*" >&2; exit 1; }

# records <journal>: completed records (lines minus the version header).
records() {
  [ -f "$1" ] || { echo 0; return; }
  local n
  n=$(grep -c '"key"' "$1" 2>/dev/null) || n=0
  echo "$n"
}

# wait_records <journal> <n> <timeout-s>: poll until >= n records.
wait_records() {
  local deadline=$(($(date +%s) + $3))
  while [ "$(records "$1")" -lt "$2" ]; do
    [ "$(date +%s)" -lt "$deadline" ] || fail "timed out waiting for $2 records in $1 (have $(records "$1"))"
    sleep 0.2
  done
}

$GO build -o "$BIN" ./cmd/quicbench || fail "build failed"

echo "dist-smoke: reference single-process run"
"$BIN" sweep "${SWEEP_ARGS[@]}" -checkpoint "$WORK/ref.jsonl" >/dev/null \
  || fail "reference sweep failed"

echo "dist-smoke: starting coordinator"
"$BIN" sweep "${SWEEP_ARGS[@]}" -checkpoint "$WORK/dist.jsonl" \
  -listen 127.0.0.1:0 -min-workers 3 -workers 3 -worker-timeout 3s \
  >"$WORK/coord.out" 2>"$WORK/coord.log" &
COORD=$!
PIDS+=("$COORD")

ADDR=""
deadline=$(($(date +%s) + 30))
while [ -z "$ADDR" ]; do
  [ "$(date +%s)" -lt "$deadline" ] || fail "coordinator never announced its address"
  ADDR=$(sed -n 's/^sweep: coordinator listening on //p' "$WORK/coord.log" | head -1)
  sleep 0.1
done
echo "dist-smoke: coordinator on $ADDR"

WPIDS=()
for i in 1 2 3; do
  "$BIN" worker -connect "$ADDR" -name "w$i" 2>"$WORK/w$i.log" &
  WPIDS+=("$!")
  PIDS+=("$!")
done

deadline=$(($(date +%s) + 30))
while [ "$(grep -c joined "$WORK/coord.log")" -lt 3 ]; do
  [ "$(date +%s)" -lt "$deadline" ] || fail "fleet never reached 3 joins; coord.log: $(cat "$WORK/coord.log")"
  sleep 0.2
done

# Kill one worker the moment real work is flowing: its in-flight cell
# must re-dispatch to a healthy worker without burning a retry attempt.
wait_records "$WORK/dist.jsonl" 1 120
echo "dist-smoke: SIGKILL worker w3 (pid ${WPIDS[2]})"
kill -9 "${WPIDS[2]}" || fail "could not kill worker"

# Then kill the coordinator itself mid-campaign — kill -9, not a graceful
# drain: a drain would journal 'skipped' records and break bit-identity.
wait_records "$WORK/dist.jsonl" 3 120
echo "dist-smoke: SIGKILL coordinator (pid $COORD)"
kill -9 "$COORD" || fail "could not kill coordinator"
wait "$COORD" 2>/dev/null

# The surviving workers are re-dialing with backoff; a resumed
# coordinator on the same address finds its fleet waiting.
echo "dist-smoke: resuming coordinator"
"$BIN" sweep "${SWEEP_ARGS[@]}" -checkpoint "$WORK/dist.jsonl" -resume \
  -listen "$ADDR" -min-workers 2 -workers 3 -worker-timeout 3s \
  >"$WORK/coord2.out" 2>"$WORK/coord2.log" \
  || fail "resumed sweep failed: $(tail -5 "$WORK/coord2.log")"

grep -q "joined" "$WORK/coord2.log" || fail "no workers rejoined the resumed coordinator"

# Campaign complete: the coordinator's bye lets surviving workers exit 0.
for i in 0 1; do
  wait "${WPIDS[$i]}"
  status=$?
  [ "$status" -eq 0 ] || fail "worker w$((i + 1)) exited $status (want 0 after bye); log: $(tail -3 "$WORK/w$((i + 1)).log")"
done

cmp "$WORK/ref.jsonl" "$WORK/dist.jsonl" || {
  echo "--- ref.jsonl"; cat "$WORK/ref.jsonl"
  echo "--- dist.jsonl"; cat "$WORK/dist.jsonl"
  fail "distributed journal differs from single-process reference"
}

grep -q "ok" "$WORK/coord2.out" || fail "resumed sweep reported no ok cells"
echo "dist-smoke: ok (journal bit-identical across worker SIGKILL + coordinator SIGKILL/resume)"
