#!/usr/bin/env bash
# fabric-chaos: the Byzantine-tolerance soak. A coordinator with full
# auditing, a shared-secret handshake, and a worker allowlist shards a
# seeded campaign across three workers: one honest, one behind a chaotic
# network (latency spikes, byte corruption the frame CRC must catch, an
# asymmetric partition only the reaper can detect), and one Byzantine —
# it executes trials honestly, then perturbs its answers with perfect
# wire integrity, so only audit re-execution can expose it. Mid-campaign
# the coordinator's journal disk "fills" (injected ENOSPC) and the
# coordinator dies with a torn record on disk. The resumed run must
# truncate the torn tail, finish the campaign, and leave a journal
# byte-identical to an uninterrupted single-process run — with the
# Byzantine worker visibly quarantined along the way.
set -u

GO=${GO:-go}
BIN=$(mktemp -t quicbench-fabric.XXXXXX)
WORK=$(mktemp -d -t quicbench-fabric-chaos.XXXXXX)
SWEEP_ARGS=(-stacks quicgo,lsquic,xquic,quicly,quinn,quiche -ccas cubic
  -duration 30s -trials 2 -seed 7)
TOKEN=fabric-chaos-secret

PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill -9 "$pid" 2>/dev/null; done
  rm -rf "$BIN" "$WORK"
}
trap cleanup EXIT

fail() {
  echo "fabric-chaos: $*" >&2
  for f in "$WORK"/*.log; do
    [ -f "$f" ] && { echo "--- $f"; tail -15 "$f"; } >&2
  done
  exit 1
}

# wait_gone <pid> <timeout-s>: poll until the process exits.
wait_gone() {
  local deadline=$(($(date +%s) + $2))
  while kill -0 "$1" 2>/dev/null; do
    [ "$(date +%s)" -lt "$deadline" ] || return 1
    sleep 0.2
  done
}

$GO build -o "$BIN" ./cmd/quicbench || fail "build failed"

echo "fabric-chaos: reference single-process run"
"$BIN" sweep "${SWEEP_ARGS[@]}" -checkpoint "$WORK/ref.jsonl" >/dev/null \
  || fail "reference sweep failed"

# The ENOSPC budget tears the 4th record mid-line: the journal header plus
# three complete records fit, then the "disk" fills 25 bytes into the next.
BUDGET=$(($(head -4 "$WORK/ref.jsonl" | wc -c) + 25))

cat >"$WORK/fleet.txt" <<EOF
# fabric-chaos fleet roster (names; -workers-file also accepts host:port)
w-good    # honest
w-part    # honest, behind an asymmetric partition + latency jitter
w-flip    # honest, behind a byte-corrupting link
w-evil    # Byzantine
EOF

echo "fabric-chaos: starting coordinator (audit 1.0, auth, allowlist, ENOSPC at $BUDGET bytes)"
QUICBENCH_TEST_JOURNAL_ENOSPC=$BUDGET \
  "$BIN" sweep "${SWEEP_ARGS[@]}" -checkpoint "$WORK/dist.jsonl" \
  -listen 127.0.0.1:0 -workers 3 -worker-timeout 3s \
  -audit 1.0 -auth-token "$TOKEN" -workers-file "$WORK/fleet.txt" \
  >"$WORK/coord.out" 2>"$WORK/coord.log" &
COORD=$!
PIDS+=("$COORD")

ADDR=""
deadline=$(($(date +%s) + 30))
while [ -z "$ADDR" ]; do
  [ "$(date +%s)" -lt "$deadline" ] || fail "coordinator never announced its address"
  ADDR=$(sed -n 's/^sweep: coordinator listening on //p' "$WORK/coord.log" | head -1)
  sleep 0.1
done
echo "fabric-chaos: coordinator on $ADDR"

# An impostor without the fleet secret must be turned away before dispatch.
"$BIN" worker -connect "$ADDR" -name w-good 2>"$WORK/impostor.log"
[ $? -ne 0 ] || fail "a worker without the auth token was admitted"
grep -qi "auth" "$WORK/impostor.log" || fail "impostor exit carried no auth error"

"$BIN" worker -connect "$ADDR" -name w-good -auth-token "$TOKEN" \
  2>"$WORK/w-good.log" &
GOOD=$!
PIDS+=("$GOOD")

# w-part's outbound direction silently drops everything for 4 s starting
# at its 3rd write — longer than the 3 s heartbeat timeout, so only the
# wall-clock reaper can notice and re-dispatch its trials.
QUICBENCH_TEST_DIST_LATENCY=40ms \
QUICBENCH_TEST_DIST_PARTITION=3:4s \
  "$BIN" worker -connect "$ADDR" -name w-part -auth-token "$TOKEN" \
  2>"$WORK/w-part.log" &
PART=$!
PIDS+=("$PART")

# w-flip's link flips one byte in every 3rd write: the frame CRC must
# catch each one and the coordinator must classify the connection as a
# worker fault — never decode the frame, never poison the journal.
QUICBENCH_TEST_DIST_CORRUPT=3 \
  "$BIN" worker -connect "$ADDR" -name w-flip -auth-token "$TOKEN" \
  2>"$WORK/w-flip.log" &
FLIP=$!
PIDS+=("$FLIP")

QUICBENCH_TEST_DIST_DIVERGE=cubic \
  "$BIN" worker -connect "$ADDR" -name w-evil -auth-token "$TOKEN" \
  2>"$WORK/w-evil.log" &
EVIL=$!
PIDS+=("$EVIL")

# The coordinator dies on the injected ENOSPC (every trial still executed;
# the journal holds the verified prefix plus one torn line).
wait "$COORD"
status=$?
[ "$status" -ne 0 ] || fail "coordinator survived a full journal disk (exit 0)"
grep -qi "no space left\|ENOSPC" "$WORK/coord.log" "$WORK/coord.out" \
  || fail "coordinator exit did not surface ENOSPC"

# The torn journal is exactly the budget, and byte-for-byte a prefix of
# the reference — ordered flushing under chaos never reordered a record.
size=$(wc -c <"$WORK/dist.jsonl")
[ "$size" -eq "$BUDGET" ] || fail "torn journal is $size bytes, want exactly the $BUDGET-byte budget"
head -c "$BUDGET" "$WORK/ref.jsonl" | cmp -s - "$WORK/dist.jsonl" \
  || fail "torn journal is not a byte prefix of the reference"

# The corrupted link was caught by the frame CRC and classified as a
# worker fault; the partition was caught by the wall-clock reaper.
grep -qi "corrupt frame" "$WORK/coord.log" || fail "no corrupt-frame classification in coordinator log"
grep -qi "reaping worker w-part" "$WORK/coord.log" || fail "partitioned worker was never reaped"

# The Byzantine worker must have been caught by auditing and quarantined,
# visibly in coordinator telemetry and terminally for the worker itself.
grep -qi "quarantin" "$WORK/coord.log" || fail "no quarantine in coordinator log"
grep -i "quarantin" "$WORK/coord.log" | grep -q "w-evil" \
  || fail "quarantine log does not name w-evil"
grep -qi "diverg" "$WORK/coord.log" || fail "no divergence report in coordinator log"
wait_gone "$EVIL" 60 || fail "quarantined worker w-evil never exited"
wait "$EVIL"
status=$?
[ "$status" -ne 0 ] || fail "quarantined worker w-evil exited 0, want a quarantine error"
grep -qi "quarantin" "$WORK/w-evil.log" || fail "w-evil exit carried no quarantine error"

# The honest worker got a clean campaign-complete bye.
wait_gone "$GOOD" 60 || fail "honest worker never exited after bye"
wait "$GOOD"
status=$?
[ "$status" -eq 0 ] || fail "honest worker w-good exited $status, want 0"

# Resume without the ENOSPC hook: the torn tail is truncated (warned), the
# missing cells re-execute, and the journal converges to the reference.
echo "fabric-chaos: resuming after the disk-full crash"
"$BIN" sweep "${SWEEP_ARGS[@]}" -checkpoint "$WORK/dist.jsonl" -resume \
  -listen 127.0.0.1:0 -worker-timeout 3s -audit 1.0 -auth-token "$TOKEN" \
  >"$WORK/coord2.out" 2>"$WORK/coord2.log" \
  || fail "resumed sweep failed"
grep -qi "torn line" "$WORK/coord2.log" || fail "resume did not warn about the torn journal tail"

cmp "$WORK/ref.jsonl" "$WORK/dist.jsonl" || {
  diff "$WORK/ref.jsonl" "$WORK/dist.jsonl" >"$WORK/journal.diff" 2>&1
  [ -n "${FABRIC_CHAOS_DIFF:-}" ] && cp "$WORK/journal.diff" "$FABRIC_CHAOS_DIFF"
  fail "final journal differs from single-process reference (see journal.diff)"
}

audits=$(grep -ci "diverged" "$WORK/coord.log" || true)
corrupt=$(grep -ci "corrupt frame" "$WORK/coord.log" || true)
echo "fabric-chaos: ok (ENOSPC crash + torn-tail resume bit-identical;" \
  "w-evil quarantined; $audits divergence line(s), $corrupt corrupt-frame line(s))"
