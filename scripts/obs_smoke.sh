#!/usr/bin/env bash
# obs-smoke: the fleet observability plane end to end on loopback. A
# coordinator runs a small distributed campaign with -obs-addr; the
# script scrapes /metrics mid-campaign (exposition must be valid
# Prometheus text with histogram families and per-worker series), then
# takes a final scrape during the -obs-wait linger and asserts the
# fleet-summed trial counter equals the journal's record count — the
# observability plane must agree with the ground truth it narrates.
set -u

GO=${GO:-go}
CURL=${CURL:-curl}
BIN=$(mktemp -t quicbench-obs.XXXXXX)
WORK=$(mktemp -d -t quicbench-obs-smoke.XXXXXX)
SWEEP_ARGS=(-stacks quicgo,lsquic,quiche -ccas cubic -duration 5s -trials 1 -seed 7)

PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill -9 "$pid" 2>/dev/null; done
  rm -rf "$BIN" "$WORK"
}
trap cleanup EXIT

fail() { echo "obs-smoke: $*" >&2; exit 1; }

command -v "$CURL" >/dev/null || fail "curl not found (set CURL=)"

# records <journal>: completed records (lines minus the version header).
records() {
  [ -f "$1" ] || { echo 0; return; }
  local n
  n=$(grep -c '"key"' "$1" 2>/dev/null) || n=0
  echo "$n"
}

# metric <file> <name>: the unlabeled (fleet-summed) sample value.
metric() {
  awk -v name="$2" '$1 == name { print $2; exit }' "$1"
}

# wait_records <journal> <n> <timeout-s>: poll until >= n records.
wait_records() {
  local deadline=$(($(date +%s) + $3))
  while [ "$(records "$1")" -lt "$2" ]; do
    [ "$(date +%s)" -lt "$deadline" ] || fail "timed out waiting for $2 records in $1 (have $(records "$1"))"
    sleep 0.2
  done
}

$GO build -o "$BIN" ./cmd/quicbench || fail "build failed"

echo "obs-smoke: reference single-process run (no observability)"
"$BIN" sweep "${SWEEP_ARGS[@]}" -checkpoint "$WORK/ref.jsonl" >/dev/null 2>&1 \
  || fail "reference sweep failed"

echo "obs-smoke: starting coordinator with observability plane"
"$BIN" sweep "${SWEEP_ARGS[@]}" -checkpoint "$WORK/run.jsonl" \
  -listen 127.0.0.1:0 -min-workers 2 -workers 2 -worker-timeout 5s \
  -obs-addr 127.0.0.1:0 -obs-wait 20s \
  >"$WORK/coord.out" 2>"$WORK/coord.log" &
COORD=$!
PIDS+=("$COORD")

ADDR="" OBS=""
deadline=$(($(date +%s) + 30))
while [ -z "$ADDR" ] || [ -z "$OBS" ]; do
  [ "$(date +%s)" -lt "$deadline" ] || fail "coordinator never announced its addresses"
  ADDR=$(sed -n 's/^sweep: coordinator listening on //p' "$WORK/coord.log" | head -n1)
  OBS=$(sed -n 's/^sweep: obs listening on //p' "$WORK/coord.log" | head -n1)
  sleep 0.2
done
echo "obs-smoke: coordinator at $ADDR, obs at $OBS"

for i in 1 2; do
  "$BIN" worker -connect "$ADDR" -name "w$i" -parallel 1 \
    >/dev/null 2>"$WORK/w$i.log" &
  PIDS+=("$!")
done

echo "obs-smoke: scraping mid-campaign"
wait_records "$WORK/run.jsonl" 1 60
"$CURL" -fsS "http://$OBS/healthz" >/dev/null || fail "healthz refused"
"$CURL" -fsS "http://$OBS/statusz" >"$WORK/statusz.json" || fail "statusz refused"
grep -q '"quicbench-status/v1"' "$WORK/statusz.json" || fail "statusz schema missing"
"$CURL" -fsS "http://$OBS/metrics" >"$WORK/mid.prom" || fail "metrics refused"
grep -q '^# TYPE quicbench_dist_assign_rtt_us histogram$' "$WORK/mid.prom" \
  || fail "mid-campaign scrape has no assign-RTT histogram family"
grep -q '_bucket{le="+Inf"}' "$WORK/mid.prom" \
  || fail "histogram exposition lacks the mandatory +Inf bucket"

echo "obs-smoke: waiting for the campaign (sweep table on coordinator stdout)"
deadline=$(($(date +%s) + 120))
while ! grep -q 'obs endpoints linger' "$WORK/coord.log"; do
  kill -0 "$COORD" 2>/dev/null || break
  [ "$(date +%s)" -lt "$deadline" ] || fail "campaign did not finish in time"
  sleep 0.5
done

echo "obs-smoke: final scrape during the linger window"
"$CURL" -fsS "http://$OBS/metrics" >"$WORK/final.prom" \
  || fail "final scrape refused (linger window missed?)"

grep -q '^quicbench_worker_trials_total{worker="w[12]"}' "$WORK/final.prom" \
  || fail "final scrape has no per-worker trial series"

JOURNAL=$(records "$WORK/run.jsonl")
FLEET=$(metric "$WORK/final.prom" quicbench_worker_trials_total)
[ -n "$FLEET" ] || fail "final scrape has no fleet-summed quicbench_worker_trials_total"
[ "$FLEET" = "$JOURNAL" ] \
  || fail "fleet-summed trials ($FLEET) != journal records ($JOURNAL)"
echo "obs-smoke: fleet-summed trials == journal records == $JOURNAL"

wait "$COORD"
rc=$?
[ "$rc" -eq 0 ] || fail "coordinator exited $rc"

# Observability is read-only: the scraped, fleet-aggregated campaign's
# journal must be byte-identical to the unobserved single-process run's.
cmp -s "$WORK/ref.jsonl" "$WORK/run.jsonl" \
  || fail "scraped campaign journal differs from the unobserved reference"
echo "obs-smoke: scraped journal is byte-identical to the unobserved run"

echo "obs-smoke: PASS"
