package quicbench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/isolate"
	"repro/internal/live"
	"repro/internal/netem"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stacks"
	"repro/internal/telemetry"
	"repro/internal/traffic"
)

// SweepOptions configures a supervised conformance sweep: the grid to
// measure and the supervision policy (worker pool, retry budget, per-trial
// virtual-clock timeout, checkpoint journal).
type SweepOptions struct {
	// Stacks names the stacks under test (default: all 11 QUIC stacks).
	Stacks []string
	// CCAs selects the algorithms (default: CUBIC, BBR, Reno). Pairs a
	// stack does not implement are skipped, as in the paper's grid.
	CCAs []CCA
	// Networks lists the network configurations (default: the paper's
	// representative 20 Mbps / 10 ms / 1 BDP setting).
	Networks []Network
	// TrafficSpec, when non-empty, is a JSON many-flow traffic model (see
	// DefaultTrafficSpec for the schema): the sweep then runs one
	// many-flow cell per network — thousands of concurrent flows from the
	// spec's cohort mix churning through the bottleneck, with conformance
	// evaluated per cohort against the spec's reference cohort — instead
	// of the two-flow stack × CCA grid (Stacks/CCAs are ignored). All
	// supervision machinery (workers, isolation, checkpointing, the
	// distributed fabric, tracing) applies unchanged.
	TrafficSpec []byte
	// Workers bounds the concurrent cells (default 1).
	Workers int
	// Retries is the per-cell attempt budget (default 3).
	Retries int
	// TrialTimeout caps each underlying trial's virtual clock; 0 disables.
	TrialTimeout time.Duration
	// Seed seeds the deterministic retry-backoff jitter.
	Seed uint64
	// Checkpoint is the JSONL journal path ("" disables checkpointing).
	Checkpoint string
	// Resume replays the journal at Checkpoint and re-executes only
	// missing, failed, or skipped cells.
	Resume bool
	// Progress, when non-nil, observes each cell result as it completes
	// (calls are serialized).
	Progress func(SweepCellResult)
	// Isolate executes each cell attempt in a crash-isolated child
	// process (the hidden `quicbench _trial` mode): a hard crash, wedge,
	// or memory blowout kills only that cell's child, which the parent
	// reaps, classifies, and retries. When spawning fails the cell falls
	// back to in-process execution — isolation degrades, never errors.
	Isolate bool
	// IsolateMemLimitMB, when positive, is each child's soft heap
	// ceiling in MiB (debug.SetMemoryLimit, hard self-check at 2x).
	IsolateMemLimitMB int
	// IsolateStallTimeout is how long a child may go without a heartbeat
	// before the reaper SIGKILLs it (0 selects 10 s).
	IsolateStallTimeout time.Duration
	// IsolateWallTimeout, when positive, is a wall-clock deadline per
	// child attempt, enforced by SIGKILL and classified as a timeout.
	IsolateWallTimeout time.Duration
	// Live runs every cell attempt on the real-UDP loopback backend
	// (internal/live) instead of the discrete-event simulator: the same
	// conformance methodology over real sockets through a userspace
	// bottleneck relay, with a per-trial watchdog reaper and typed
	// failure classification. Cells whose sockets cannot open (EPERM in
	// a sandbox, port exhaustion) degrade gracefully to the simulator
	// (OnFallback observes each degradation; the `live.fallbacks`
	// counter tallies them). Live trials run in wall-clock time — set
	// Network.Duration accordingly. Mutually exclusive with Isolate and
	// Listen.
	Live bool
	// LiveStallTimeout is how long a live trial's relay may go without
	// moving a datagram before the watchdog kills the trial as a timeout
	// (0 selects 2 s). Must be shorter than the trial duration to beat a
	// trial that merely crawls.
	LiveStallTimeout time.Duration
	// LiveWallTimeout is the teardown allowance past the nominal trial
	// duration before the watchdog kills an overrunning live trial
	// (0 selects 10 s).
	LiveWallTimeout time.Duration
	// Listen, when non-empty, runs the sweep on the distributed fabric:
	// the coordinator binds this TCP address (e.g. "127.0.0.1:0") and
	// shards cell attempts across connected `quicbench worker` processes.
	// Workers heartbeat; a stalled or crashed worker's trials re-dispatch
	// to healthy ones, and an empty fleet degrades to local execution
	// (through the Isolate executor when that is set). Checkpoint records
	// flush in cell input order, so the distributed journal is
	// byte-identical to a single-process run's.
	Listen string
	// OnListen, when non-nil, receives the coordinator's bound address
	// (useful with a ":0" Listen) before any trial is dispatched.
	OnListen func(addr string)
	// MinWorkers, when positive, waits for that many workers to connect
	// before dispatching trials (bounded by MinWorkersTimeout; on timeout
	// the sweep proceeds with whatever fleet it has).
	MinWorkers int
	// MinWorkersTimeout bounds the MinWorkers wait (default 30 s).
	MinWorkersTimeout time.Duration
	// WorkerHeartbeatTimeout is how long a worker may go silent before
	// the coordinator reaps it and re-dispatches its trials (default 10 s).
	WorkerHeartbeatTimeout time.Duration
	// AuditFraction, when positive, spot-checks that fraction of
	// remote results (0..1) by re-executing the trial on a second worker
	// (or locally); digest divergence marks the worker suspect and
	// repeated divergence quarantines it. 1.0 audits every trial.
	AuditFraction float64
	// AuthToken, when non-empty, requires every worker to prove it holds
	// the same shared secret in its hello handshake (HMAC, token never on
	// the wire); unauthenticated peers are dropped before dispatch.
	AuthToken string
	// WorkerAllowlist, when non-empty, restricts admission to workers
	// whose name or host appears in the list (see -workers-file).
	WorkerAllowlist []string
	// Logf, when non-nil, observes fabric lifecycle events (worker joins,
	// deaths, re-dispatches) and non-fatal supervision warnings (e.g. a
	// torn journal tail truncated on resume). Must be concurrency-safe.
	Logf func(format string, args ...any)
	// OnFallback, when non-nil, observes each cell that degraded from
	// isolated to in-process execution (must be concurrency-safe).
	OnFallback func(cell string, err error)
	// OnRetry, when non-nil, observes each failed cell attempt about to be
	// retried, with the backoff about to be slept (must be
	// concurrency-safe).
	OnRetry func(cell string, attempt int, err error, backoff time.Duration)
	// TraceDir, when non-empty, enables qlog-style structured tracing: each
	// cell gets a subdirectory holding one .qlog.jsonl trace per trial
	// (cwnd/ssthresh updates, CC state transitions, loss and PTO events,
	// end-of-trial summaries). Traces are seed-stable: in-process and
	// isolated runs of the same sweep produce byte-identical files.
	TraceDir string
	// TracePackets additionally streams each trial's bottleneck link events
	// to a .packets.csv next to its qlog (O(1) memory, any trial length).
	TracePackets bool
	// ProgressOut, when non-nil, receives a live one-line progress render
	// (cells done/total, retries, ETA, worker and child state), rewritten
	// each tick — typically os.Stderr.
	ProgressOut io.Writer
	// StatusPath, when non-empty, appends a machine-readable JSONL status
	// snapshot per tick (telemetry.StatusSnapshot lines).
	StatusPath string
	// StatusInterval is the progress/status tick period (default 1s).
	StatusInterval time.Duration
	// Metrics, when non-nil, is the counters/gauges registry the sweep
	// reports into (cells done/failed, retries, isolation fallbacks, packet
	// pool traffic); status snapshots embed its contents. Nil with progress
	// enabled creates a private registry.
	Metrics *telemetry.Registry
	// ObsAddr, when non-empty, serves the observability plane over HTTP
	// for the life of the sweep: /metrics (Prometheus text, per-worker
	// and fleet-summed series when the fabric is up), /statusz (the
	// quicbench-status/v1 snapshot), /healthz, and /debug/pprof. Bind
	// ":0" for an ephemeral port and read it back via OnObsListen.
	ObsAddr string
	// OnObsListen, when non-nil, receives the observability server's
	// bound address before any trial is dispatched.
	OnObsListen func(addr string)
	// ObsWait keeps the observability endpoints up that long after the
	// sweep completes, so a scraper can take a final converged reading
	// (campaign totals, fleet counters) before the process exits.
	ObsWait time.Duration
}

// SweepCellResult is one cell of a supervised sweep: its identity, the
// supervised outcome, and the metrics when the cell completed.
type SweepCellResult struct {
	Cell     string
	Outcome  string // "ok", "retried", "failed", or "skipped"
	Attempts int
	// Report holds the §3 metrics; valid only when Completed() is true.
	Report Report
	// Err is the typed failure text for failed/skipped cells.
	Err string
}

// Completed reports whether the cell produced metrics.
func (r SweepCellResult) Completed() bool {
	return r.Outcome == string(runner.OutcomeOK) || r.Outcome == string(runner.OutcomeRetried)
}

// SweepSummary is the merged result of a sweep, in grid order regardless of
// completion order or how many runs it took to get here.
type SweepSummary struct {
	Cells []SweepCellResult
	// Reused counts cells replayed from the checkpoint journal.
	Reused int
	// Interrupted reports that the sweep was cancelled before finishing;
	// re-run with Resume to pick up where it left off.
	Interrupted bool
}

// Failed counts cells that exhausted their retry budget.
func (s *SweepSummary) Failed() int { return s.count(runner.OutcomeFailed) }

// Skipped counts cells abandoned by cancellation.
func (s *SweepSummary) Skipped() int { return s.count(runner.OutcomeSkipped) }

func (s *SweepSummary) count(o runner.Outcome) int {
	n := 0
	for _, c := range s.Cells {
		if c.Outcome == string(o) {
			n++
		}
	}
	return n
}

// sweepCells expands the options into the internal grid.
func sweepCells(opts SweepOptions) ([]core.SweepCell, error) {
	if len(opts.TrafficSpec) > 0 {
		spec, err := traffic.ParseSpec(opts.TrafficSpec)
		if err != nil {
			return nil, err
		}
		nets := opts.Networks
		if len(nets) == 0 {
			nets = []Network{{}}
		}
		cnets := make([]core.Network, len(nets))
		for i, n := range nets {
			cnets[i] = n.toCore()
		}
		return core.ManyFlowCells(spec, cnets)
	}
	names := opts.Stacks
	if len(names) == 0 {
		for _, s := range stacks.QUICStacks() {
			names = append(names, s.Name)
		}
	}
	ccas := opts.CCAs
	if len(ccas) == 0 {
		ccas = AllCCAs
	}
	sccas := make([]stacks.CCA, len(ccas))
	for i, c := range ccas {
		sccas[i] = stacks.CCA(c)
	}
	nets := opts.Networks
	if len(nets) == 0 {
		nets = []Network{{}}
	}
	cnets := make([]core.Network, len(nets))
	for i, n := range nets {
		cnets[i] = n.toCore()
	}
	return core.GridCells(names, sccas, cnets)
}

// cellResult lowers a journal record to the public result type.
func cellResult(rec runner.Record) SweepCellResult {
	out := SweepCellResult{
		Cell:     rec.Key,
		Outcome:  string(rec.Outcome),
		Attempts: rec.Attempts,
		Err:      rec.Err,
	}
	if len(rec.Result) > 0 {
		var cr core.CellReport
		if err := json.Unmarshal(rec.Result, &cr); err == nil {
			out.Report = Report{
				Conformance:         cr.Conformance,
				ConformanceOld:      cr.ConformanceOld,
				ConformanceT:        cr.ConformanceT,
				DeltaThroughputMbps: cr.DeltaThroughputMbps,
				DeltaDelayMs:        cr.DeltaDelayMs,
				K:                   cr.K,
				ManyFlow:            fromManyFlowReport(cr.ManyFlow),
			}
		}
	}
	return out
}

// RunSweep measures conformance over the requested grid under full
// supervision: each cell runs on a bounded worker pool with panic
// isolation, deterministic retry/backoff, and an optional per-trial
// virtual-clock timeout. With a Checkpoint path every completed cell is
// journaled (fsync'd JSONL), and Resume replays the journal so an
// interrupted sweep continues exactly where it stopped — the merged results
// are bit-identical to an uninterrupted run. Cancelling ctx (e.g. on
// SIGINT) drains in-flight cells gracefully: running trials abort at the
// next watchdog tick, pending cells record "skipped", and the journal stays
// valid for resumption.
func RunSweep(ctx context.Context, opts SweepOptions) (*SweepSummary, error) {
	cells, err := sweepCells(opts)
	if err != nil {
		return nil, err
	}
	cfg := core.SweepConfig{
		Workers:       opts.Workers,
		MaxAttempts:   opts.Retries,
		TrialDeadline: sim.Duration(opts.TrialTimeout),
		Seed:          opts.Seed,
		Checkpoint:    opts.Checkpoint,
		Resume:        opts.Resume,
		Warnf:         opts.Logf,
		Trace:         core.TraceOptions{Dir: opts.TraceDir, Packets: opts.TracePackets},
	}

	// Telemetry: counters always feed the registry when one is configured;
	// the live progress renderer additionally needs one for its status
	// snapshots, so a private registry is created on demand.
	reg := opts.Metrics
	wantProgress := opts.ProgressOut != nil || opts.StatusPath != ""
	if reg == nil && (wantProgress || opts.ObsAddr != "") {
		reg = telemetry.NewRegistry()
	}
	var cDone, cFailed, cRetries, cFallbacks *telemetry.Counter
	if reg != nil {
		cDone = reg.Counter("sweep.cells_done")
		cFailed = reg.Counter("sweep.cells_failed")
		cRetries = reg.Counter("runner.retries")
		cFallbacks = reg.Counter("isolate.fallbacks")
		reg.RegisterFunc("netem.pool_gets", func() int64 { g, _, _ := netem.PoolStats(); return g })
		reg.RegisterFunc("netem.pool_outstanding", func() int64 { g, p, _ := netem.PoolStats(); return g - p })
		reg.RegisterFunc("netem.pool_news", func() int64 { _, _, n := netem.PoolStats(); return n })
	}

	if opts.Live && (opts.Isolate || opts.Listen != "") {
		return nil, fmt.Errorf("quicbench: -live is mutually exclusive with -isolate and -listen (live trials hold real sockets in this process)")
	}

	// Hot-seam histograms: per-executor trial wall latency (also feeds the
	// progress renderer's p99 column) and the supervisor's computed retry
	// backoff delays.
	var latHist, backoffHist *telemetry.Histogram
	if reg != nil {
		execName := "inproc"
		switch {
		case opts.Listen != "":
			execName = "dist"
		case opts.Live:
			execName = "live"
		case opts.Isolate:
			execName = "isolate"
		}
		latHist = reg.Histogram("sweep.trial_latency_us." + execName)
		backoffHist = reg.Histogram("runner.backoff_us")
	}
	var cLiveFallbacks, cLiveWarnings *telemetry.Counter
	if reg != nil && opts.Live {
		cLiveFallbacks = reg.Counter("live.fallbacks")
		cLiveWarnings = reg.Counter("live.warnings")
	}
	if opts.Live {
		cfg.Executor = &live.Executor{
			Stall:     opts.LiveStallTimeout,
			WallGrace: opts.LiveWallTimeout,
			Metrics:   reg,
			OnFallback: func(cell string, ferr error) {
				if cLiveFallbacks != nil {
					cLiveFallbacks.Inc()
				}
				if opts.OnFallback != nil {
					opts.OnFallback(cell, ferr)
				}
			},
			OnWarn: func(cell string, w live.Warning) {
				if cLiveWarnings != nil {
					cLiveWarnings.Inc()
				}
				if opts.Logf != nil {
					opts.Logf("%s: %s", cell, w)
				}
			},
		}
	}

	var ex *isolate.Executor
	if opts.Isolate {
		ex = &isolate.Executor{
			StallTimeout:  opts.IsolateStallTimeout,
			WallDeadline:  opts.IsolateWallTimeout,
			MemLimitBytes: int64(opts.IsolateMemLimitMB) << 20,
			OnFallback: func(cell string, ferr error) {
				if cFallbacks != nil {
					cFallbacks.Inc()
				}
				if opts.OnFallback != nil {
					opts.OnFallback(cell, ferr)
				}
			},
		}
		defer ex.Close()
		cfg.Executor = ex
	}

	var coord *dist.Coordinator
	if opts.Listen != "" {
		coord = &dist.Coordinator{
			HeartbeatTimeout: opts.WorkerHeartbeatTimeout,
			AuditFraction:    opts.AuditFraction,
			AuthToken:        opts.AuthToken,
			Allowed:          opts.WorkerAllowlist,
			Logf:             opts.Logf,
			Metrics:          reg,
		}
		if ex != nil {
			coord.Local = ex // empty-fleet degradation keeps crash isolation
		}
		addr, lerr := coord.Listen(opts.Listen)
		if lerr != nil {
			return nil, fmt.Errorf("quicbench: %w", lerr)
		}
		defer coord.Close()
		if opts.OnListen != nil {
			opts.OnListen(addr)
		}
		cfg.Executor = coord
		// Ordered journal flushing is what keeps a multi-worker distributed
		// checkpoint byte-identical to a single-process run — and any crash
		// leaves it a clean prefix for --resume.
		cfg.OrderedJournal = true
		if reg != nil {
			reg.RegisterFunc("dist.workers", func() int64 { return int64(coord.Stats().Workers) })
			reg.RegisterFunc("dist.joins", func() int64 { return coord.Stats().Joins })
			reg.RegisterFunc("dist.deaths", func() int64 { return coord.Stats().Deaths })
			reg.RegisterFunc("dist.redispatches", func() int64 { return coord.Stats().Redispatches })
			reg.RegisterFunc("dist.remote_trials", func() int64 { return coord.Stats().RemoteTrials })
			reg.RegisterFunc("dist.local_trials", func() int64 { return coord.Stats().LocalTrials })
			reg.RegisterFunc("dist.audits", func() int64 { return coord.Stats().Audits })
			reg.RegisterFunc("dist.divergences", func() int64 { return coord.Stats().Divergences })
			reg.RegisterFunc("dist.quarantines", func() int64 { return coord.Stats().Quarantines })
			reg.RegisterFunc("dist.corrupt_frames", func() int64 { return coord.Stats().CorruptFrames })
			reg.RegisterFunc("dist.auth_failures", func() int64 { return coord.Stats().AuthFailures })
		}
	}

	var prog *telemetry.Progress
	if wantProgress {
		prog = &telemetry.Progress{
			Total:    len(cells),
			Out:      opts.ProgressOut,
			Interval: opts.StatusInterval,
			Registry: reg,
			Latency:  latHist,
		}
		if opts.StatusPath != "" {
			if dir := filepath.Dir(opts.StatusPath); dir != "." {
				if serr := os.MkdirAll(dir, 0o755); serr != nil {
					return nil, fmt.Errorf("quicbench: status file: %w", serr)
				}
			}
			f, serr := os.Create(opts.StatusPath)
			if serr != nil {
				return nil, fmt.Errorf("quicbench: status file: %w", serr)
			}
			defer f.Close()
			prog.Status = f
		}
		if ex != nil {
			prog.Children = func() []telemetry.ChildStat {
				kids := ex.LiveChildren()
				out := make([]telemetry.ChildStat, len(kids))
				for i, k := range kids {
					out[i] = telemetry.ChildStat(k)
				}
				return out
			}
		}
		if coord != nil {
			prog.Fleet = func() []telemetry.FleetStat {
				ws := coord.FleetStats()
				out := make([]telemetry.FleetStat, len(ws))
				for i, w := range ws {
					out[i] = telemetry.FleetStat{
						Name: w.Name, Addr: w.Addr, State: w.State,
						InFlight: w.InFlight, Done: int(w.Done),
						HeartbeatAge: w.HeartbeatAge,
					}
				}
				return out
			}
		}
		defer prog.Start()()
	}

	if opts.ObsAddr != "" {
		srv := &obs.Server{Addr: opts.ObsAddr, Registry: reg, Logf: opts.Logf}
		if prog != nil {
			srv.Status = prog.Snapshot
		}
		if coord != nil {
			srv.Workers = func() []obs.WorkerMetrics {
				fm := coord.FleetMetrics()
				out := make([]obs.WorkerMetrics, len(fm))
				for i, wm := range fm {
					out[i] = obs.WorkerMetrics{Worker: wm.Worker, Samples: wm.Samples, Hists: wm.Hists}
				}
				return out
			}
		}
		addr, oerr := srv.Start()
		if oerr != nil {
			return nil, fmt.Errorf("quicbench: obs server: %w", oerr)
		}
		defer srv.Stop()
		if opts.OnObsListen != nil {
			opts.OnObsListen(addr)
		}
	}

	// The fleet wait runs after every endpoint (coordinator socket, obs
	// server) is announced, so workers and scrapers spawned off those
	// lines can connect while the wait is in progress.
	if coord != nil && opts.MinWorkers > 0 {
		wait := opts.MinWorkersTimeout
		if wait <= 0 {
			wait = 30 * time.Second
		}
		wctx, wcancel := context.WithTimeout(ctx, wait)
		n, ok := coord.WaitWorkers(wctx, opts.MinWorkers)
		wcancel()
		if !ok && opts.Logf != nil {
			opts.Logf("quicbench: proceeding with %d/%d workers after %v", n, opts.MinWorkers, wait)
		}
	}

	// started tracks which cells actually executed this run, so OnRecord can
	// tell fresh results from journal replays (replays never start a trial);
	// startedAt pins each cell's first attempt start for wall latency.
	var startedMu sync.Mutex
	started := make(map[string]bool)
	startedAt := make(map[string]time.Time)
	cfg.OnTrialStart = func(key string, worker, attempt int) {
		startedMu.Lock()
		started[key] = true
		if _, ok := startedAt[key]; !ok {
			startedAt[key] = time.Now()
		}
		startedMu.Unlock()
		if prog != nil {
			prog.TrialStarted(key, worker, attempt)
		}
	}
	cfg.OnRetry = func(key string, attempt int, rerr error, backoff time.Duration) {
		if cRetries != nil {
			cRetries.Inc()
		}
		if backoffHist != nil {
			backoffHist.ObserveDuration(backoff)
		}
		if opts.OnRetry != nil {
			opts.OnRetry(key, attempt, rerr, backoff)
		}
	}
	cfg.OnRecord = func(rec runner.Record) {
		startedMu.Lock()
		fresh := started[rec.Key]
		start := startedAt[rec.Key]
		startedMu.Unlock()
		failed := rec.Outcome == runner.OutcomeFailed
		reused := !fresh && (rec.Outcome == runner.OutcomeOK || rec.Outcome == runner.OutcomeRetried)
		if fresh && latHist != nil {
			// First-start → record: the cell's supervised wall latency,
			// retries and backoff included. Replays never observe.
			latHist.ObserveDuration(time.Since(start))
		}
		if cDone != nil {
			cDone.Inc()
		}
		if failed && cFailed != nil {
			cFailed.Inc()
		}
		if prog != nil {
			prog.TrialFinished(rec.Key, failed, reused)
		}
		if opts.Progress != nil {
			opts.Progress(cellResult(rec))
		}
	}

	res, err := core.RunSweep(ctx, cfg, cells)
	if err != nil {
		return nil, err
	}
	if opts.ObsAddr != "" && opts.ObsWait > 0 {
		// Linger so an external scraper can take a final converged reading
		// before the endpoints disappear with the process.
		if opts.Logf != nil {
			opts.Logf("quicbench: obs endpoints linger %v for a final scrape", opts.ObsWait)
		}
		select {
		case <-time.After(opts.ObsWait):
		case <-ctx.Done():
		}
	}
	sum := &SweepSummary{Reused: res.Reused, Interrupted: res.Interrupted}
	for _, rec := range res.Records {
		sum.Cells = append(sum.Cells, cellResult(rec))
	}
	return sum, nil
}

// TrialChildMain is the body of the hidden `quicbench _trial` mode — the
// child half of sweep isolation. It speaks the internal/isolate protocol
// on stdin/stdout (spec in, heartbeats and result out) and executes one
// sweep cell through the exact code path the in-process executor uses, so
// isolated and in-process results are bit-identical. It returns the
// process exit code. Test binaries reach it through TestMain when the
// isolate.ChildEnvMarker environment variable is set.
func TrialChildMain() int {
	return isolate.ChildMain(os.Stdin, os.Stdout,
		func(ctx context.Context, spec isolate.TrialSpec) (json.RawMessage, error) {
			return core.ExecuteCellSpec(ctx, spec.Payload)
		})
}

// RenderSweep writes the outcome-annotated sweep table and summary line.
func RenderSweep(w io.Writer, s *SweepSummary) error {
	rows := make([]report.SweepRow, len(s.Cells))
	for i, c := range s.Cells {
		rows[i] = report.SweepRow{
			Cell:      c.Cell,
			Outcome:   runner.Outcome(c.Outcome),
			Attempts:  c.Attempts,
			Conf:      c.Report.Conformance,
			ConfT:     c.Report.ConformanceT,
			DTputMbps: c.Report.DeltaThroughputMbps,
			DDelayMs:  c.Report.DeltaDelayMs,
			K:         c.Report.K,
			Err:       c.Err,
		}
		if mf := c.Report.ManyFlow; mf != nil && c.Completed() {
			for _, co := range mf.Cohorts {
				rows[i].Cohorts = append(rows[i].Cohorts, report.CohortRow{
					Name:      co.Name,
					Reference: co.Reference,
					Conf:      co.Conformance,
					ConfT:     co.ConformanceT,
					DTputMbps: co.DeltaThroughputMbps,
					DDelayMs:  co.DeltaDelayMs,
					K:         co.K,
					Flows:     co.Flows,
					Completed: co.Completed,
					FCTms:     co.MeanFCTms,
					Mbps:      co.MeanMbps,
					Jain:      co.Jain,
				})
			}
		}
	}
	if err := report.RenderSweep(w, rows, s.Interrupted); err != nil {
		return err
	}
	if s.Reused > 0 {
		noun := "cells"
		if s.Reused == 1 {
			noun = "cell"
		}
		if _, err := fmt.Fprintf(w, "(%d %s replayed from checkpoint)\n", s.Reused, noun); err != nil {
			return err
		}
	}
	return nil
}
