package quicbench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/isolate"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stacks"
)

// SweepOptions configures a supervised conformance sweep: the grid to
// measure and the supervision policy (worker pool, retry budget, per-trial
// virtual-clock timeout, checkpoint journal).
type SweepOptions struct {
	// Stacks names the stacks under test (default: all 11 QUIC stacks).
	Stacks []string
	// CCAs selects the algorithms (default: CUBIC, BBR, Reno). Pairs a
	// stack does not implement are skipped, as in the paper's grid.
	CCAs []CCA
	// Networks lists the network configurations (default: the paper's
	// representative 20 Mbps / 10 ms / 1 BDP setting).
	Networks []Network
	// Workers bounds the concurrent cells (default 1).
	Workers int
	// Retries is the per-cell attempt budget (default 3).
	Retries int
	// TrialTimeout caps each underlying trial's virtual clock; 0 disables.
	TrialTimeout time.Duration
	// Seed seeds the deterministic retry-backoff jitter.
	Seed uint64
	// Checkpoint is the JSONL journal path ("" disables checkpointing).
	Checkpoint string
	// Resume replays the journal at Checkpoint and re-executes only
	// missing, failed, or skipped cells.
	Resume bool
	// Progress, when non-nil, observes each cell result as it completes
	// (calls are serialized).
	Progress func(SweepCellResult)
	// Isolate executes each cell attempt in a crash-isolated child
	// process (the hidden `quicbench _trial` mode): a hard crash, wedge,
	// or memory blowout kills only that cell's child, which the parent
	// reaps, classifies, and retries. When spawning fails the cell falls
	// back to in-process execution — isolation degrades, never errors.
	Isolate bool
	// IsolateMemLimitMB, when positive, is each child's soft heap
	// ceiling in MiB (debug.SetMemoryLimit, hard self-check at 2x).
	IsolateMemLimitMB int
	// IsolateStallTimeout is how long a child may go without a heartbeat
	// before the reaper SIGKILLs it (0 selects 10 s).
	IsolateStallTimeout time.Duration
	// IsolateWallTimeout, when positive, is a wall-clock deadline per
	// child attempt, enforced by SIGKILL and classified as a timeout.
	IsolateWallTimeout time.Duration
	// OnFallback, when non-nil, observes each cell that degraded from
	// isolated to in-process execution (must be concurrency-safe).
	OnFallback func(cell string, err error)
}

// SweepCellResult is one cell of a supervised sweep: its identity, the
// supervised outcome, and the metrics when the cell completed.
type SweepCellResult struct {
	Cell     string
	Outcome  string // "ok", "retried", "failed", or "skipped"
	Attempts int
	// Report holds the §3 metrics; valid only when Completed() is true.
	Report Report
	// Err is the typed failure text for failed/skipped cells.
	Err string
}

// Completed reports whether the cell produced metrics.
func (r SweepCellResult) Completed() bool {
	return r.Outcome == string(runner.OutcomeOK) || r.Outcome == string(runner.OutcomeRetried)
}

// SweepSummary is the merged result of a sweep, in grid order regardless of
// completion order or how many runs it took to get here.
type SweepSummary struct {
	Cells []SweepCellResult
	// Reused counts cells replayed from the checkpoint journal.
	Reused int
	// Interrupted reports that the sweep was cancelled before finishing;
	// re-run with Resume to pick up where it left off.
	Interrupted bool
}

// Failed counts cells that exhausted their retry budget.
func (s *SweepSummary) Failed() int { return s.count(runner.OutcomeFailed) }

// Skipped counts cells abandoned by cancellation.
func (s *SweepSummary) Skipped() int { return s.count(runner.OutcomeSkipped) }

func (s *SweepSummary) count(o runner.Outcome) int {
	n := 0
	for _, c := range s.Cells {
		if c.Outcome == string(o) {
			n++
		}
	}
	return n
}

// sweepCells expands the options into the internal grid.
func sweepCells(opts SweepOptions) ([]core.SweepCell, error) {
	names := opts.Stacks
	if len(names) == 0 {
		for _, s := range stacks.QUICStacks() {
			names = append(names, s.Name)
		}
	}
	ccas := opts.CCAs
	if len(ccas) == 0 {
		ccas = AllCCAs
	}
	sccas := make([]stacks.CCA, len(ccas))
	for i, c := range ccas {
		sccas[i] = stacks.CCA(c)
	}
	nets := opts.Networks
	if len(nets) == 0 {
		nets = []Network{{}}
	}
	cnets := make([]core.Network, len(nets))
	for i, n := range nets {
		cnets[i] = n.toCore()
	}
	return core.GridCells(names, sccas, cnets)
}

// cellResult lowers a journal record to the public result type.
func cellResult(rec runner.Record) SweepCellResult {
	out := SweepCellResult{
		Cell:     rec.Key,
		Outcome:  string(rec.Outcome),
		Attempts: rec.Attempts,
		Err:      rec.Err,
	}
	if len(rec.Result) > 0 {
		var cr core.CellReport
		if err := json.Unmarshal(rec.Result, &cr); err == nil {
			out.Report = Report{
				Conformance:         cr.Conformance,
				ConformanceOld:      cr.ConformanceOld,
				ConformanceT:        cr.ConformanceT,
				DeltaThroughputMbps: cr.DeltaThroughputMbps,
				DeltaDelayMs:        cr.DeltaDelayMs,
				K:                   cr.K,
			}
		}
	}
	return out
}

// RunSweep measures conformance over the requested grid under full
// supervision: each cell runs on a bounded worker pool with panic
// isolation, deterministic retry/backoff, and an optional per-trial
// virtual-clock timeout. With a Checkpoint path every completed cell is
// journaled (fsync'd JSONL), and Resume replays the journal so an
// interrupted sweep continues exactly where it stopped — the merged results
// are bit-identical to an uninterrupted run. Cancelling ctx (e.g. on
// SIGINT) drains in-flight cells gracefully: running trials abort at the
// next watchdog tick, pending cells record "skipped", and the journal stays
// valid for resumption.
func RunSweep(ctx context.Context, opts SweepOptions) (*SweepSummary, error) {
	cells, err := sweepCells(opts)
	if err != nil {
		return nil, err
	}
	cfg := core.SweepConfig{
		Workers:       opts.Workers,
		MaxAttempts:   opts.Retries,
		TrialDeadline: sim.Duration(opts.TrialTimeout),
		Seed:          opts.Seed,
		Checkpoint:    opts.Checkpoint,
		Resume:        opts.Resume,
	}
	if opts.Isolate {
		ex := &isolate.Executor{
			StallTimeout:  opts.IsolateStallTimeout,
			WallDeadline:  opts.IsolateWallTimeout,
			MemLimitBytes: int64(opts.IsolateMemLimitMB) << 20,
			OnFallback:    opts.OnFallback,
		}
		defer ex.Close()
		cfg.Executor = ex
	}
	if opts.Progress != nil {
		cfg.OnRecord = func(rec runner.Record) { opts.Progress(cellResult(rec)) }
	}
	res, err := core.RunSweep(ctx, cfg, cells)
	if err != nil {
		return nil, err
	}
	sum := &SweepSummary{Reused: res.Reused, Interrupted: res.Interrupted}
	for _, rec := range res.Records {
		sum.Cells = append(sum.Cells, cellResult(rec))
	}
	return sum, nil
}

// TrialChildMain is the body of the hidden `quicbench _trial` mode — the
// child half of sweep isolation. It speaks the internal/isolate protocol
// on stdin/stdout (spec in, heartbeats and result out) and executes one
// sweep cell through the exact code path the in-process executor uses, so
// isolated and in-process results are bit-identical. It returns the
// process exit code. Test binaries reach it through TestMain when the
// isolate.ChildEnvMarker environment variable is set.
func TrialChildMain() int {
	return isolate.ChildMain(os.Stdin, os.Stdout,
		func(ctx context.Context, spec isolate.TrialSpec) (json.RawMessage, error) {
			return core.ExecuteCellSpec(ctx, spec.Payload)
		})
}

// RenderSweep writes the outcome-annotated sweep table and summary line.
func RenderSweep(w io.Writer, s *SweepSummary) error {
	rows := make([]report.SweepRow, len(s.Cells))
	for i, c := range s.Cells {
		rows[i] = report.SweepRow{
			Cell:      c.Cell,
			Outcome:   runner.Outcome(c.Outcome),
			Attempts:  c.Attempts,
			Conf:      c.Report.Conformance,
			ConfT:     c.Report.ConformanceT,
			DTputMbps: c.Report.DeltaThroughputMbps,
			DDelayMs:  c.Report.DeltaDelayMs,
			K:         c.Report.K,
			Err:       c.Err,
		}
	}
	if err := report.RenderSweep(w, rows, s.Interrupted); err != nil {
		return err
	}
	if s.Reused > 0 {
		noun := "cells"
		if s.Reused == 1 {
			noun = "cell"
		}
		if _, err := fmt.Fprintf(w, "(%d %s replayed from checkpoint)\n", s.Reused, noun); err != nil {
			return err
		}
	}
	return nil
}
