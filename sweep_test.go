package quicbench

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"
)

// sweepTestOpts keeps facade sweep tests fast: two stacks, short flows.
func sweepTestOpts() SweepOptions {
	return SweepOptions{
		Stacks: []string{"quicgo", "lsquic"},
		CCAs:   []CCA{CUBIC},
		Networks: []Network{{
			BandwidthMbps: 20,
			RTT:           10 * time.Millisecond,
			BufferBDP:     1,
			Duration:      2 * time.Second,
			Trials:        2,
			Seed:          3,
		}},
	}
}

func TestRunSweepFacade(t *testing.T) {
	opts := sweepTestOpts()
	var progressed int
	opts.Progress = func(SweepCellResult) { progressed++ }
	sum, err := RunSweep(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Cells) != 2 || progressed != 2 {
		t.Fatalf("got %d cells, %d progress calls, want 2/2", len(sum.Cells), progressed)
	}
	for _, c := range sum.Cells {
		if !c.Completed() || c.Outcome != "ok" || c.Attempts != 1 {
			t.Errorf("cell %s: outcome %s attempts %d, want ok/1", c.Cell, c.Outcome, c.Attempts)
		}
		if c.Report.K < 1 {
			t.Errorf("cell %s: report not populated (K=%d)", c.Cell, c.Report.K)
		}
	}
	if sum.Failed() != 0 || sum.Skipped() != 0 || sum.Interrupted {
		t.Errorf("clean sweep reported failures: %+v", sum)
	}

	var buf bytes.Buffer
	if err := RenderSweep(&buf, sum); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "quicgo/cubic") || !strings.Contains(out, "2 cells: 2 ok") {
		t.Errorf("RenderSweep output incomplete:\n%s", out)
	}
}

func TestRunSweepFacadeCheckpointResume(t *testing.T) {
	opts := sweepTestOpts()
	opts.Checkpoint = t.TempDir() + "/sweep.jsonl"

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts.Progress = func(SweepCellResult) { cancel() } // stop after the first cell
	part, err := RunSweep(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !part.Interrupted || part.Skipped() != 1 {
		t.Fatalf("interrupted sweep: Interrupted=%v Skipped=%d, want true/1", part.Interrupted, part.Skipped())
	}

	opts.Progress = nil
	opts.Resume = true
	sum, err := RunSweep(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Reused != 1 || sum.Interrupted {
		t.Fatalf("resume: Reused=%d Interrupted=%v, want 1/false", sum.Reused, sum.Interrupted)
	}
	for _, c := range sum.Cells {
		if c.Outcome != "ok" {
			t.Errorf("resumed cell %s outcome %s, want ok", c.Cell, c.Outcome)
		}
	}
}

func TestRunSweepUnknownStack(t *testing.T) {
	opts := sweepTestOpts()
	opts.Stacks = []string{"nosuchstack"}
	if _, err := RunSweep(context.Background(), opts); err == nil {
		t.Fatal("RunSweep accepted an unknown stack")
	}
}
