package quicbench

import (
	"bytes"
	"context"
	"encoding/json"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// traceTree reads every regular file under dir into a rel-path → bytes map.
func traceTree(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, werr error) error {
		if werr != nil || d.IsDir() {
			return werr
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		out[rel] = b
		return nil
	})
	if err != nil {
		t.Fatalf("walking %s: %v", dir, err)
	}
	return out
}

// TestSweepTraceBitIdenticalAcrossExecutors is the golden qlog guarantee:
// the same seeded sweep traced in-process and under crash-isolated child
// processes must write byte-identical trace trees — the executor is an
// operational detail that never leaks into the telemetry.
func TestSweepTraceBitIdenticalAcrossExecutors(t *testing.T) {
	dir := t.TempDir()
	inprocD := filepath.Join(dir, "inproc")
	isoD := filepath.Join(dir, "iso")

	opts := sweepTestOpts()
	opts.TraceDir = inprocD
	opts.TracePackets = true
	if _, err := RunSweep(context.Background(), opts); err != nil {
		t.Fatalf("in-process traced sweep: %v", err)
	}

	iopts := isolatedTestOpts()
	iopts.TraceDir = isoD
	iopts.TracePackets = true
	iopts.OnFallback = func(cell string, err error) {
		t.Errorf("cell %s silently degraded to in-process: %v", cell, err)
	}
	sum, err := RunSweep(context.Background(), iopts)
	if err != nil {
		t.Fatalf("isolated traced sweep: %v", err)
	}
	for _, c := range sum.Cells {
		if !c.Completed() {
			t.Fatalf("isolated cell %s: outcome %s (%s)", c.Cell, c.Outcome, c.Err)
		}
	}

	inproc, iso := traceTree(t, inprocD), traceTree(t, isoD)
	if len(inproc) == 0 {
		t.Fatal("in-process sweep wrote no trace files")
	}
	if len(inproc) != len(iso) {
		t.Fatalf("trace trees differ in size: in-process %d files, isolated %d", len(inproc), len(iso))
	}
	var qlogs int
	for rel, want := range inproc {
		got, ok := iso[rel]
		if !ok {
			t.Errorf("%s missing from the isolated trace tree", rel)
			continue
		}
		if !bytes.Equal(want, got) {
			t.Errorf("%s: trace bytes differ between executors (%d vs %d bytes)", rel, len(want), len(got))
		}
		if strings.HasSuffix(rel, ".qlog.jsonl") {
			qlogs++
			f, err := os.Open(filepath.Join(inprocD, rel))
			if err != nil {
				t.Fatal(err)
			}
			_, events, rerr := telemetry.ReadTrace(f)
			f.Close()
			if rerr != nil {
				t.Errorf("%s: invalid trace: %v", rel, rerr)
			} else if len(events) == 0 {
				t.Errorf("%s: no events", rel)
			}
		}
	}
	// 2 cells × 2 trials × {test,ref} = 8 qlog files, plus packet CSVs.
	if qlogs != 8 {
		t.Errorf("qlog file count = %d, want 8", qlogs)
	}
}

// TestSweepStatusFile: -status wiring end to end — the sweep appends
// schema-tagged JSONL snapshots whose final line reflects completion and
// carries the telemetry counters.
func TestSweepStatusFile(t *testing.T) {
	dir := t.TempDir()
	statusPath := filepath.Join(dir, "status.jsonl")

	opts := sweepTestOpts()
	opts.StatusPath = statusPath
	opts.StatusInterval = 50 * time.Millisecond
	reg := telemetry.NewRegistry()
	opts.Metrics = reg
	if _, err := RunSweep(context.Background(), opts); err != nil {
		t.Fatalf("sweep: %v", err)
	}

	raw, err := os.ReadFile(statusPath)
	if err != nil {
		t.Fatalf("status file: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("status file is empty")
	}
	var last telemetry.StatusSnapshot
	for _, ln := range lines {
		var s telemetry.StatusSnapshot
		if err := json.Unmarshal([]byte(ln), &s); err != nil {
			t.Fatalf("bad status line %q: %v", ln, err)
		}
		if s.Schema != telemetry.StatusSchema {
			t.Fatalf("status schema = %q, want %q", s.Schema, telemetry.StatusSchema)
		}
		last = s
	}
	if last.Done != 2 || last.Total != 2 || last.Failed != 0 {
		t.Errorf("final snapshot = %d/%d done, %d failed; want 2/2, 0", last.Done, last.Total, last.Failed)
	}
	if last.Counters["sweep.cells_done"] != 2 {
		t.Errorf("counters[sweep.cells_done] = %d, want 2", last.Counters["sweep.cells_done"])
	}
	// The caller-supplied registry observed the same counters.
	var sawDone bool
	for _, smp := range reg.Snapshot() {
		if smp.Name == "sweep.cells_done" && smp.Value == 2 {
			sawDone = true
		}
	}
	if !sawDone {
		t.Error("caller registry missing sweep.cells_done=2")
	}
}
